//! Schedulability-ratio sweeps: lint → synthesis → audit over a
//! utilization grid of generated families, N seeds per point.

use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;

use crusade_core::CosynOptions;
use crusade_lint::{lint, LintOptions};
use crusade_obs::{Metrics, MetricsSnapshot};
use crusade_workloads::PaperLibrary;

use crate::family::{generate, GenConfig};

/// The sweep's secondary axis: the knob varied alongside utilization.
#[derive(Debug, Clone, PartialEq)]
pub enum SecondaryAxis {
    /// No secondary axis: one row per utilization point.
    None,
    /// Vary [`GenConfig::tightness`] over these values.
    Tightness(Vec<f64>),
    /// Vary [`GenConfig::hw_share`] over these values.
    HwShare(Vec<f64>),
}

impl SecondaryAxis {
    /// Stable name recorded in every sweep point.
    pub fn name(&self) -> &'static str {
        match self {
            SecondaryAxis::None => "none",
            SecondaryAxis::Tightness(_) => "tightness",
            SecondaryAxis::HwShare(_) => "hw-share",
        }
    }

    /// The grid values; `None` yields a single unset value.
    pub fn values(&self) -> Vec<Option<f64>> {
        match self {
            SecondaryAxis::None => vec![None],
            SecondaryAxis::Tightness(v) | SecondaryAxis::HwShare(v) => {
                v.iter().copied().map(Some).collect()
            }
        }
    }
}

/// Configuration of one sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Base family knobs; `utilization` (and the secondary knob) are
    /// overridden per grid point, and the per-run seed is
    /// `base.seed + k` for `k` in `0..seeds`.
    pub base: GenConfig,
    /// The primary axis: total utilization targets.
    pub utilizations: Vec<f64>,
    /// The secondary axis.
    pub secondary: SecondaryAxis,
    /// Seeds (= generated specs) per grid point.
    pub seeds: u64,
    /// Synthesis options for every run.
    pub options: CosynOptions,
    /// Whether each successful synthesis is independently re-audited;
    /// violations count as `audit_dirty` rather than accepted.
    pub audit: bool,
}

impl Default for SweepConfig {
    /// The full grid the bench `sweep` binary runs: 5 utilization
    /// points × 3 tightness values × 5 seeds.
    fn default() -> Self {
        SweepConfig {
            base: GenConfig::default(),
            utilizations: vec![0.8, 1.6, 2.4, 3.2, 4.0],
            secondary: SecondaryAxis::Tightness(vec![0.15, 0.45, 0.75]),
            seeds: 5,
            options: CosynOptions::default(),
            audit: true,
        }
    }
}

impl SweepConfig {
    /// The tier-1 CI smoke: one utilization point, two seeds, no
    /// secondary axis.
    pub fn smoke() -> Self {
        SweepConfig {
            utilizations: vec![1.6],
            secondary: SecondaryAxis::None,
            seeds: 2,
            ..SweepConfig::default()
        }
    }
}

/// One seed's outcome within a grid point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepRun {
    /// The generator seed of this run.
    pub seed: u64,
    /// `accepted`, `lint-rejected`, `infeasible` or `audit-dirty`.
    pub outcome: String,
    /// Task count of the generated spec.
    pub tasks: usize,
    /// Architecture dollar cost, for accepted runs.
    pub cost: Option<u64>,
    /// PE count, for accepted runs.
    pub pes: Option<usize>,
    /// Scheduling attempts (allocation candidates evaluated), for runs
    /// that synthesized.
    pub attempts: Option<usize>,
    /// Wall-clock of lint + synthesis + audit for this run, in
    /// milliseconds. Nondeterministic; determinism comparisons strip it.
    pub wall_ms: f64,
}

/// One grid point: `seeds` runs at a fixed (utilization, secondary)
/// pair, with the acceptance-ratio and cost curves' raw material.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Total utilization target of this point.
    pub utilization: f64,
    /// Name of the secondary axis (`none` when absent).
    pub secondary_axis: String,
    /// Value of the secondary knob at this point, when the axis is set.
    pub secondary: Option<f64>,
    /// Number of seeds run.
    pub seeds: u64,
    /// Runs that synthesized and (when auditing) audited clean.
    pub accepted: u64,
    /// Runs rejected by the lint pre-pass (proved infeasible).
    pub lint_rejected: u64,
    /// Runs where synthesis failed to find an architecture.
    pub infeasible: u64,
    /// Runs whose architecture failed the independent audit.
    pub audit_dirty: u64,
    /// `accepted / seeds` — the schedulability-style acceptance ratio.
    pub acceptance_ratio: f64,
    /// Mean architecture cost over accepted runs.
    pub mean_cost: Option<f64>,
    /// Mean scheduling attempts over accepted runs.
    pub mean_attempts: Option<f64>,
    /// Mean per-run wall-clock in milliseconds. Nondeterministic.
    pub mean_wall_ms: f64,
    /// The individual runs.
    pub runs: Vec<SweepRun>,
    /// Aggregated obs metrics of every synthesis at this point. The
    /// `phase_wall_us` field is nondeterministic.
    pub metrics: MetricsSnapshot,
}

/// The serialized form of a completed sweep — the payload of
/// `BENCH_sweep.json` and of `crusade sweep --out`. Everything except
/// the per-run/per-point wall-clock fields (`wall_ms`, `mean_wall_ms`,
/// `metrics.phase_wall_us`) is deterministic for a fixed configuration.
#[derive(Debug, Clone, Serialize)]
pub struct SweepArtifact {
    /// Base generator knobs (per-point overrides excluded).
    pub base: GenConfig,
    /// Seeds per grid point.
    pub seeds_per_point: u64,
    /// Name of the secondary axis.
    pub secondary_axis: String,
    /// The primary-axis grid.
    pub utilizations: Vec<f64>,
    /// Every grid point, in sweep order.
    pub points: Vec<SweepPoint>,
}

impl SweepArtifact {
    /// Packages a finished sweep with the configuration that ran it.
    pub fn new(config: &SweepConfig, points: Vec<SweepPoint>) -> Self {
        SweepArtifact {
            base: config.base.normalized(),
            seeds_per_point: config.seeds,
            secondary_axis: config.secondary.name().to_string(),
            utilizations: config.utilizations.clone(),
            points,
        }
    }
}

/// Runs the full sweep grid, invoking `on_point` after each completed
/// grid point (progress reporting for long sweeps).
pub fn run_sweep(
    lib: &PaperLibrary,
    config: &SweepConfig,
    mut on_point: impl FnMut(&SweepPoint),
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &utilization in &config.utilizations {
        for secondary in config.secondary.values() {
            let point = run_point(lib, config, utilization, secondary);
            on_point(&point);
            points.push(point);
        }
    }
    points
}

fn run_point(
    lib: &PaperLibrary,
    config: &SweepConfig,
    utilization: f64,
    secondary: Option<f64>,
) -> SweepPoint {
    let metrics = Arc::new(Metrics::new());
    let options = config.options.clone().with_observer(metrics.clone());
    let mut runs = Vec::with_capacity(usize::try_from(config.seeds).unwrap_or(usize::MAX));
    let (mut accepted, mut lint_rejected, mut infeasible, mut audit_dirty) = (0, 0, 0, 0);
    for k in 0..config.seeds {
        let mut gen_cfg = config.base.clone();
        gen_cfg.seed = config.base.seed.wrapping_add(k);
        gen_cfg.utilization = utilization;
        match (&config.secondary, secondary) {
            (SecondaryAxis::Tightness(_), Some(v)) => gen_cfg.tightness = v,
            (SecondaryAxis::HwShare(_), Some(v)) => gen_cfg.hw_share = v,
            _ => {}
        }
        let generated = generate(lib, &gen_cfg);
        let started = Instant::now();
        let run = run_one(lib, config, &options, &generated, gen_cfg.seed, started);
        match run.outcome.as_str() {
            "accepted" => accepted += 1,
            "lint-rejected" => lint_rejected += 1,
            "infeasible" => infeasible += 1,
            _ => audit_dirty += 1,
        }
        runs.push(run);
    }
    let mean = |f: &dyn Fn(&SweepRun) -> Option<f64>| -> Option<f64> {
        let xs: Vec<f64> = runs.iter().filter_map(f).collect();
        (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
    };
    SweepPoint {
        utilization,
        secondary_axis: config.secondary.name().to_string(),
        secondary,
        seeds: config.seeds,
        accepted,
        lint_rejected,
        infeasible,
        audit_dirty,
        acceptance_ratio: if config.seeds == 0 {
            0.0
        } else {
            accepted as f64 / config.seeds as f64
        },
        mean_cost: mean(&|r| r.cost.map(|c| c as f64)),
        mean_attempts: mean(&|r| {
            (r.outcome == "accepted")
                .then_some(r.attempts)
                .flatten()
                .map(|a| a as f64)
        }),
        mean_wall_ms: runs.iter().map(|r| r.wall_ms).sum::<f64>() / runs.len().max(1) as f64,
        runs,
        metrics: metrics.snapshot(),
    }
}

fn run_one(
    lib: &PaperLibrary,
    config: &SweepConfig,
    options: &CosynOptions,
    generated: &crate::family::GeneratedSpec,
    seed: u64,
    started: Instant,
) -> SweepRun {
    let tasks = generated.spec.task_count();
    let finish = |outcome: &str, cost, pes, attempts| SweepRun {
        seed,
        outcome: outcome.to_string(),
        tasks,
        cost,
        pes,
        attempts,
        wall_ms: started.elapsed().as_secs_f64() * 1e3,
    };
    let report = lint(&generated.spec, &lib.lib, &LintOptions::default());
    if report.has_errors() {
        return finish("lint-rejected", None, None, None);
    }
    match crusade_core::CoSynthesis::new(&generated.spec, &lib.lib)
        .with_options(options.clone())
        .run()
    {
        Err(_) => finish("infeasible", None, None, None),
        Ok(result) => {
            let dirty = config.audit
                && !crusade_verify::audit(&generated.spec, &lib.lib, options, &result).is_empty();
            finish(
                if dirty { "audit-dirty" } else { "accepted" },
                Some(result.report.cost.amount()),
                Some(result.report.pe_count),
                Some(result.report.candidates_tried),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crusade_workloads::paper_library;

    #[test]
    fn smoke_sweep_accounts_for_every_seed() {
        let lib = paper_library();
        let config = SweepConfig::smoke();
        let mut seen = 0;
        let points = run_sweep(&lib, &config, |_| seen += 1);
        assert_eq!(points.len(), 1);
        assert_eq!(seen, 1);
        let p = &points[0];
        assert_eq!(p.seeds, 2);
        assert_eq!(
            p.accepted + p.lint_rejected + p.infeasible + p.audit_dirty,
            p.seeds
        );
        assert!((0.0..=1.0).contains(&p.acceptance_ratio));
        assert_eq!(p.runs.len(), 2);
        assert_eq!(p.secondary_axis, "none");
        assert_eq!(p.audit_dirty, 0, "audit rejected a synthesized family");
        // Deterministic replay: identical outcomes and costs.
        let again = run_sweep(&lib, &config, |_| {});
        assert_eq!(p.accepted, again[0].accepted);
        assert_eq!(p.mean_cost, again[0].mean_cost);
        for (a, b) in p.runs.iter().zip(&again[0].runs) {
            assert_eq!((a.outcome.clone(), a.cost), (b.outcome.clone(), b.cost));
        }
    }
}
