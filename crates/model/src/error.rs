//! Error types for specification validation.

use std::fmt;

use crate::{EdgeId, GraphId, TaskId};

/// Why a task graph or system specification failed validation.
///
/// Returned by [`crate::TaskGraph::validate`] and
/// [`crate::SystemSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateSpecError {
    /// An edge references a task index that does not exist.
    DanglingEdge {
        /// The offending edge.
        edge: EdgeId,
        /// The nonexistent task endpoint.
        task: TaskId,
    },
    /// An edge connects a task to itself.
    SelfLoop {
        /// The offending edge.
        edge: EdgeId,
    },
    /// The task graph contains a directed cycle (the model requires acyclic
    /// graphs; loops must be folded *inside* tasks).
    Cyclic,
    /// A task cannot be mapped to any PE type (its execution-time vector is
    /// empty, or its preference vector excludes every mappable type).
    UnmappableTask {
        /// The offending task.
        task: TaskId,
    },
    /// The graph period is zero.
    ZeroPeriod,
    /// The graph deadline is zero.
    ZeroDeadline,
    /// A task graph's deadline exceeds its period *and* the specification
    /// disallows pipelined overrun.
    DeadlineBeyondPeriod,
    /// A graph declared a compatibility vector of the wrong length.
    CompatibilityLength {
        /// The graph whose vector is malformed.
        graph: GraphId,
        /// Expected number of entries (the number of graphs).
        expected: usize,
        /// Number actually supplied.
        actual: usize,
    },
    /// The compatibility matrix is asymmetric: `a` declares `b` compatible
    /// but not vice versa.
    CompatibilityAsymmetric {
        /// First graph.
        a: GraphId,
        /// Second graph.
        b: GraphId,
    },
    /// A graph's exclusion vector references a nonexistent task.
    DanglingExclusion {
        /// The task whose exclusion vector is malformed.
        task: TaskId,
        /// The nonexistent peer.
        peer: TaskId,
    },
    /// The specification contains no task graphs.
    Empty,
    /// Task-graph periods produce a hyperperiod that overflows `u64`
    /// nanoseconds.
    HyperperiodOverflow,
}

impl fmt::Display for ValidateSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateSpecError::DanglingEdge { edge, task } => {
                write!(f, "edge {edge} references nonexistent task {task}")
            }
            ValidateSpecError::SelfLoop { edge } => {
                write!(f, "edge {edge} connects a task to itself")
            }
            ValidateSpecError::Cyclic => write!(f, "task graph contains a directed cycle"),
            ValidateSpecError::UnmappableTask { task } => {
                write!(f, "task {task} cannot be mapped to any PE type")
            }
            ValidateSpecError::ZeroPeriod => write!(f, "task-graph period is zero"),
            ValidateSpecError::ZeroDeadline => write!(f, "task-graph deadline is zero"),
            ValidateSpecError::DeadlineBeyondPeriod => {
                write!(f, "task-graph deadline exceeds its period")
            }
            ValidateSpecError::CompatibilityLength {
                graph,
                expected,
                actual,
            } => write!(
                f,
                "graph {graph} has a compatibility vector of length {actual}, expected {expected}"
            ),
            ValidateSpecError::CompatibilityAsymmetric { a, b } => {
                write!(f, "compatibility of graphs {a} and {b} is asymmetric")
            }
            ValidateSpecError::DanglingExclusion { task, peer } => {
                write!(f, "task {task} excludes nonexistent task {peer}")
            }
            ValidateSpecError::Empty => write!(f, "specification contains no task graphs"),
            ValidateSpecError::HyperperiodOverflow => {
                write!(
                    f,
                    "hyperperiod of task-graph periods overflows u64 nanoseconds"
                )
            }
        }
    }
}

impl std::error::Error for ValidateSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = ValidateSpecError::Cyclic;
        let s = e.to_string();
        assert!(s.starts_with("task graph"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ValidateSpecError>();
    }
}
