//! The resource library: PE types and link types available to synthesis.

use serde::{Deserialize, Serialize};

use crate::{LinkType, LinkTypeId, PeType, PeTypeId};

/// The catalogue of hardware the co-synthesis algorithm may instantiate.
///
/// Execution-time vectors in the specification are indexed by position in
/// this library's PE list, and communication vectors by position in its
/// link list — build the library first, then the specification against it.
///
/// # Examples
///
/// ```
/// use crusade_model::{
///     AsicAttrs, Dollars, LinkClass, LinkType, Nanos, PeClass, PeType, ResourceLibrary,
/// };
///
/// let mut lib = ResourceLibrary::new();
/// let asic = lib.add_pe(PeType::new(
///     "framer",
///     Dollars::new(250),
///     PeClass::Asic(AsicAttrs { gates: 80_000, pins: 144 }),
/// ));
/// let bus = lib.add_link(LinkType::new(
///     "bus",
///     Dollars::new(10),
///     LinkClass::Bus,
///     8,
///     vec![Nanos::from_nanos(120)],
///     64,
///     Nanos::from_nanos(900),
/// ));
/// assert_eq!(lib.pe(asic).name(), "framer");
/// assert_eq!(lib.link(bus).name(), "bus");
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceLibrary {
    pes: Vec<PeType>,
    links: Vec<LinkType>,
}

impl ResourceLibrary {
    /// An empty library.
    pub fn new() -> Self {
        ResourceLibrary::default()
    }

    /// Adds a PE type and returns its id.
    pub fn add_pe(&mut self, pe: PeType) -> PeTypeId {
        let id = PeTypeId::new(self.pes.len());
        self.pes.push(pe);
        id
    }

    /// Adds a link type and returns its id.
    pub fn add_link(&mut self, link: LinkType) -> LinkTypeId {
        let id = LinkTypeId::new(self.links.len());
        self.links.push(link);
        id
    }

    /// Accesses a PE type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pe(&self, id: PeTypeId) -> &PeType {
        &self.pes[id.index()]
    }

    /// Accesses a link type.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn link(&self, id: LinkTypeId) -> &LinkType {
        &self.links[id.index()]
    }

    /// Number of PE types.
    pub fn pe_count(&self) -> usize {
        self.pes.len()
    }

    /// Number of link types.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over `(id, PE type)` pairs.
    pub fn pes(&self) -> impl Iterator<Item = (PeTypeId, &PeType)> {
        self.pes
            .iter()
            .enumerate()
            .map(|(i, p)| (PeTypeId::new(i), p))
    }

    /// Iterates over `(id, link type)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkTypeId, &LinkType)> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| (LinkTypeId::new(i), l))
    }

    /// All PE slices as a raw slice (used when computing communication and
    /// execution vectors in bulk).
    pub fn pe_slice(&self) -> &[PeType] {
        &self.pes
    }

    /// All link types as a raw slice.
    pub fn link_slice(&self) -> &[LinkType] {
        &self.links
    }

    /// Ids of PE types that are programmable (FPGA/CPLD).
    pub fn programmable_pes(&self) -> impl Iterator<Item = PeTypeId> + '_ {
        self.pes()
            .filter(|(_, p)| p.is_reconfigurable())
            .map(|(id, _)| id)
    }

    /// Finds a PE type by name.
    pub fn pe_by_name(&self, name: &str) -> Option<PeTypeId> {
        self.pes().find(|(_, p)| p.name() == name).map(|(id, _)| id)
    }

    /// Finds a link type by name.
    pub fn link_by_name(&self, name: &str) -> Option<LinkTypeId> {
        self.links()
            .find(|(_, l)| l.name() == name)
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsicAttrs, CpuAttrs, Dollars, LinkClass, Nanos, PeClass, PpeAttrs, PpeKind};

    fn lib() -> ResourceLibrary {
        let mut lib = ResourceLibrary::new();
        lib.add_pe(PeType::new(
            "cpu",
            Dollars::new(100),
            PeClass::Cpu(CpuAttrs {
                memory_bytes: 1 << 20,
                context_switch: Nanos::from_micros(10),
                comm_ports: 2,
                comm_overlap: true,
            }),
        ));
        lib.add_pe(PeType::new(
            "asic",
            Dollars::new(300),
            PeClass::Asic(AsicAttrs {
                gates: 50_000,
                pins: 100,
            }),
        ));
        lib.add_pe(PeType::new(
            "fpga",
            Dollars::new(150),
            PeClass::Ppe(PpeAttrs {
                kind: PpeKind::Fpga,
                pfus: 1024,
                flip_flops: 2048,
                pins: 160,
                boot_memory_bytes: 32 * 1024,
                config_bits_per_pfu: 160,
                partial_reconfig: false,
            }),
        ));
        lib.add_link(LinkType::new(
            "bus",
            Dollars::new(10),
            LinkClass::Bus,
            8,
            vec![Nanos::from_nanos(100)],
            64,
            Nanos::from_nanos(500),
        ));
        lib
    }

    #[test]
    fn lookup_by_name_and_id() {
        let lib = lib();
        assert_eq!(lib.pe_count(), 3);
        assert_eq!(lib.link_count(), 1);
        let fpga = lib.pe_by_name("fpga").unwrap();
        assert!(lib.pe(fpga).is_reconfigurable());
        assert!(lib.pe_by_name("nope").is_none());
        assert!(lib.link_by_name("bus").is_some());
    }

    #[test]
    fn programmable_filter() {
        let lib = lib();
        let ppes: Vec<_> = lib.programmable_pes().collect();
        assert_eq!(ppes, vec![PeTypeId::new(2)]);
    }
}
