//! Online re-synthesis: spec-delta warm starts over a deployed system.
//!
//! A deployed CRUSADE system receives a stream of [`SpecDelta`]s —
//! deadlines tighten, rates scale, task graphs arrive and retire, PEs
//! fail and return. Re-running cold co-synthesis for every change throws
//! away an incumbent architecture that is *almost entirely still valid*.
//! This module provides the two warm rungs of the escalation ladder
//! driven by `crusade-explore`:
//!
//! 1. [`admission_check`] — a conservative, architecture-independent
//!    feasibility screen that rejects in microseconds what exact
//!    synthesis would reject in seconds. It is **sound**: it rejects only
//!    on *necessary* conditions (an unmappable task, a critical path that
//!    beats every possible schedule), so a rejected delta can never have
//!    been satisfied by cold synthesis either — the admission
//!    false-accept count of the soak campaign must be zero by
//!    construction.
//! 2. [`warm_resynthesize`] — dirty-region repair from the incumbent:
//!    only the clusters of *touched* graphs are evicted, survivors keep
//!    their exact schedule windows, and the evicted work is re-placed
//!    through the same bounded victim-retry loop the fault-repair path
//!    uses. [`widened_resynthesize`] is the second, wider rung: the
//!    incumbent is stripped to its [hardware shell](crate::hardware_shell)
//!    and the whole specification re-placed onto the familiar iron.
//!
//! Neither rung is trusted: the ladder driver audits every warm result
//! with the full `crusade-verify` auditor before accepting it, and
//! escalates (widen → portfolio → cold) when the audit is dirty or the
//! rung fails.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

use crusade_model::{
    Dollars, GlobalTaskId, GraphId, Nanos, ResourceLibrary, SpecDelta, SystemSpec,
};
use crusade_obs::Event;
use crusade_sched::{check_deadlines, estimate_finish_times, Occupant};

use crate::arch::{Architecture, LinkInstanceId, PeInstanceId};
use crate::cluster::{cluster_tasks_with, ClusterId};
use crate::options::CosynOptions;
use crate::repair::{
    check_clustering, ensure_interface_with_unmerge, evict_cluster, kill_link, kill_pe,
    place_with_retry, rebuild_pe_accounting, RepairError,
};
use crate::synthesis::{SynthesisReport, SynthesisResult};
use crate::upgrade::hardware_shell;

/// The verdict of the online admission check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// Every necessary feasibility condition holds; synthesis may still
    /// fail (the check is one-sided), but it is worth attempting.
    Admit,
    /// The delta is provably infeasible for *any* architecture the
    /// library can build — exact synthesis would fail too.
    Reject {
        /// Human-readable necessary condition that failed.
        reason: String,
    },
}

impl Admission {
    /// `true` for [`Admission::Admit`].
    pub fn admitted(&self) -> bool {
        matches!(self, Admission::Admit)
    }

    /// The rejection reason, or `"ok"` when admitted.
    pub fn reason(&self) -> &str {
        match self {
            Admission::Admit => "ok",
            Admission::Reject { reason } => reason,
        }
    }
}

/// Screens a delta (already applied, yielding `spec_after`) against
/// architecture-independent necessary conditions, in time linear in the
/// touched graph:
///
/// * every task of the touched graph has at least one PE type with a
///   defined execution time (otherwise no allocation exists);
/// * the graph's critical path — fastest execution everywhere, zero
///   communication, started at the earliest start time — meets the
///   deadline (this finish time lower-bounds every realisable schedule).
///
/// Fault deltas and graph removals are always admitted: they leave the
/// specification no harder than before.
///
/// Both conditions are *necessary*, so a `Reject` here implies cold
/// synthesis would have failed — the check never turns a feasible change
/// away (zero false accepts, in the soak campaign's terminology).
pub fn admission_check(spec_after: &SystemSpec, delta: &SpecDelta) -> Admission {
    let touched = match delta {
        SpecDelta::AddTaskGraph { .. } => GraphId::new(spec_after.graph_count() - 1),
        SpecDelta::TightenDeadline { graph, .. } | SpecDelta::ScaleRate { graph, .. } => *graph,
        // Removing load or perturbing the platform never makes the
        // specification harder: admit and let the ladder sort it out.
        SpecDelta::RemoveTaskGraph { .. }
        | SpecDelta::FailPe { .. }
        | SpecDelta::RestorePe { .. }
        | SpecDelta::RetireLink { .. } => return Admission::Admit,
    };
    let graph = spec_after.graph(touched);
    for (t, task) in graph.tasks() {
        if task.exec.fastest().is_none() {
            return Admission::Reject {
                reason: format!(
                    "task \"{}\" ({t:?}) of graph \"{}\" has no PE type with a defined \
                     execution time",
                    task.name,
                    graph.name()
                ),
            };
        }
    }
    let finishes = estimate_finish_times(
        graph,
        |_| None,
        |t| graph.task(t).exec.fastest().unwrap_or(Nanos::ZERO),
        |_| None,
        |_| Nanos::ZERO,
    );
    if let Some(miss) = check_deadlines(graph, &finishes).first() {
        return Admission::Reject {
            reason: format!(
                "graph \"{}\": critical path finishes at {} under fastest-execution, \
                 zero-communication assumptions, past deadline (task {:?} misses by {})",
                graph.name(),
                finishes[miss.task.index()],
                miss.task,
                miss.finish.saturating_sub(miss.deadline),
            ),
        };
    }
    Admission::Admit
}

/// Why a warm rung could not produce an architecture. The ladder driver
/// maps these onto escalation triggers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WarmFailure {
    /// The incumbent's surviving clusters could not be re-identified in
    /// the re-clustered specification (cluster boundaries moved) — the
    /// warm premise is void; escalate.
    ClusteringShifted(String),
    /// A structural fault names a PE or link instance the incumbent does
    /// not have — an operational error in the delta stream, not something
    /// escalation can fix.
    BadFault(String),
    /// The repair machinery failed (retry budget, unallocatable cluster,
    /// no feasible interface) — escalate.
    Repair(RepairError),
}

impl std::fmt::Display for WarmFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WarmFailure::ClusteringShifted(msg) => {
                write!(f, "clustering shifted under the delta: {msg}")
            }
            WarmFailure::BadFault(msg) => write!(f, "invalid structural fault: {msg}"),
            WarmFailure::Repair(e) => write!(f, "warm repair failed: {e}"),
        }
    }
}

impl std::error::Error for WarmFailure {}

impl From<RepairError> for WarmFailure {
    fn from(e: RepairError) -> Self {
        WarmFailure::Repair(e)
    }
}

/// A successful warm (or widened) re-synthesis step.
#[derive(Debug, Clone)]
pub struct WarmOutcome {
    /// The re-synthesised system, audit-ready (the caller must still run
    /// the independent auditor before trusting it).
    pub result: SynthesisResult,
    /// Clusters that were (re-)placed by this step.
    pub moved_clusters: usize,
    /// Incremental dollar cost of parts purchased by this step.
    pub added_cost: Dollars,
    /// Victim-retry iterations consumed.
    pub retries_used: usize,
    /// `true` when the incumbent absorbed the delta with *zero* moves —
    /// the Ri-style fast path (e.g. a tightened deadline the deployed
    /// schedule already meets).
    pub in_place: bool,
}

/// Re-synthesises from the incumbent after `delta`, evicting only the
/// *dirty region* — the clusters of graphs the delta touched (plus
/// whatever a structural fault orphans). Surviving placements keep their
/// exact windows; evicted work is re-placed through the bounded
/// victim-retry loop shared with [`repair`](crate::repair).
///
/// `restorable` names the PE instances (by instantiation index) that
/// earlier deltas of this sequence failed and that may be un-retired by
/// [`SpecDelta::RestorePe`]; restoring an instance not in the set is a
/// deterministic no-op (the depot returned hardware the incumbent no
/// longer tracks — e.g. after an escalation rebuilt the architecture).
///
/// # Errors
///
/// [`WarmFailure::ClusteringShifted`] when survivors cannot be
/// re-identified after re-clustering, [`WarmFailure::BadFault`] for
/// fault deltas naming unknown instances, [`WarmFailure::Repair`] when
/// placement or interface synthesis fails. The ladder driver escalates
/// on the first and third and aborts on the second.
#[allow(clippy::too_many_lines)] // one rung, one narrative
#[allow(clippy::too_many_arguments)] // the rung contract: specs, incumbent, delta, fault set, budget
pub fn warm_resynthesize(
    spec_before: &SystemSpec,
    spec_after: &SystemSpec,
    lib: &ResourceLibrary,
    options: &CosynOptions,
    incumbent: &SynthesisResult,
    delta: &SpecDelta,
    restorable: &BTreeSet<u32>,
    retry_budget: usize,
) -> Result<WarmOutcome, WarmFailure> {
    let t0 = Instant::now();
    let options = options.effective();
    let old_clustering = &incumbent.clustering;
    check_clustering(spec_before, old_clustering)?;

    // Ri-style in-place fast path: a tightened deadline the deployed
    // schedule already meets costs nothing — the incumbent (and its
    // clustering, still valid because only a deadline changed) is the
    // answer, with an empty dirty region.
    if let SpecDelta::TightenDeadline { .. } = delta {
        if check_clustering(spec_after, old_clustering).is_ok()
            && exact_deadlines_ok(spec_after, &incumbent.architecture)
        {
            let report = refreshed_report(
                &incumbent.architecture,
                lib,
                incumbent,
                old_clustering.cluster_count(),
                (0, 0),
                t0,
            );
            return Ok(WarmOutcome {
                result: SynthesisResult {
                    architecture: incumbent.architecture.clone(),
                    clustering: old_clustering.clone(),
                    report,
                },
                moved_clusters: 0,
                added_cost: Dollars::ZERO,
                retries_used: 0,
                in_place: true,
            });
        }
    }

    let new_clustering = cluster_tasks_with(spec_after, lib, &options)
        .map_err(|e| WarmFailure::Repair(RepairError::Internal(e.to_string())))?;
    let mut arch = incumbent.architecture.clone();

    // The dirty region, in *old* graph ids: graphs whose residency the
    // delta invalidates. Removing graph g shifts every id above it, so
    // the shifted graphs are evicted wholesale — surviving graphs keep
    // identity ids and with them valid schedule-board keys.
    let old_count = spec_before.graph_count();
    let mut dirty: BTreeSet<GraphId> = BTreeSet::new();
    match delta {
        SpecDelta::AddTaskGraph { .. } => {}
        SpecDelta::RemoveTaskGraph { graph } => {
            dirty.extend((graph.index()..old_count).map(GraphId::new));
        }
        SpecDelta::TightenDeadline { graph, .. } | SpecDelta::ScaleRate { graph, .. } => {
            dirty.insert(*graph);
        }
        SpecDelta::FailPe { .. } | SpecDelta::RestorePe { .. } | SpecDelta::RetireLink { .. } => {}
    }

    // Evict the dirty region (old cluster space, old spec edge sets).
    for (cid, cluster) in old_clustering.clusters() {
        if dirty.contains(&cluster.graph) {
            options.observer.emit(|| Event::Eviction {
                cluster: cid.index() as u64,
            });
            evict_cluster(&mut arch, old_clustering, spec_before, cid);
        }
    }

    // Structural faults act on the incumbent's instances directly.
    match delta {
        SpecDelta::FailPe { pe } => {
            let id = PeInstanceId::new(*pe as usize);
            kill_pe(&mut arch, old_clustering, spec_before, id).map_err(|e| match e {
                RepairError::NoSuchPe(_) => {
                    WarmFailure::BadFault(format!("fail-pe {pe}: no such live PE instance"))
                }
                other => WarmFailure::Repair(other),
            })?;
        }
        SpecDelta::RetireLink { link } => {
            let id = LinkInstanceId::new(*link as usize);
            kill_link(&mut arch, old_clustering, spec_before, id).map_err(|e| match e {
                RepairError::NoSuchLink(_) => {
                    WarmFailure::BadFault(format!("retire-link {link}: no such live link instance"))
                }
                other => WarmFailure::Repair(other),
            })?;
        }
        SpecDelta::RestorePe { pe }
            if restorable.contains(pe) && (*pe as usize) < arch.pe_slots() =>
        {
            let id = PeInstanceId::new(*pe as usize);
            if arch.pe(id).retired {
                arch.pe_mut(id).retired = false;
            }
        }
        // RestorePe of an unknown instance: deterministic no-op (see doc
        // comment above).
        _ => {}
    }

    // Re-identify every surviving resident cluster in the new clustering
    // by (graph, member tasks). Any mismatch voids the warm premise.
    let mut survivors: BTreeSet<ClusterId> = BTreeSet::new();
    for (_, pe) in arch.pes() {
        for mode in &pe.modes {
            survivors.extend(mode.clusters.iter().copied());
        }
    }
    let mut cmap: BTreeMap<ClusterId, ClusterId> = BTreeMap::new();
    for &old_cid in &survivors {
        let old = old_clustering.cluster(old_cid);
        if dirty.contains(&old.graph) || old.graph.index() >= spec_after.graph_count() {
            return Err(WarmFailure::ClusteringShifted(format!(
                "cluster {old_cid} of graph {:?} survived its own eviction",
                old.graph
            )));
        }
        let Some(&t0_task) = old.tasks.first() else {
            return Err(WarmFailure::ClusteringShifted(format!(
                "surviving cluster {old_cid} has no member tasks"
            )));
        };
        let new_cid = new_clustering.cluster_of(old.graph, t0_task);
        let new = new_clustering.cluster(new_cid);
        if new.graph != old.graph || new.tasks != old.tasks {
            return Err(WarmFailure::ClusteringShifted(format!(
                "cluster {old_cid} ({:?} of graph {:?}) re-clustered as {new_cid} ({:?})",
                old.tasks, old.graph, new.tasks
            )));
        }
        cmap.insert(old_cid, new_cid);
    }

    // Rewrite mode membership into the new cluster space and rebuild the
    // per-PE accounting from the new clustering.
    let pe_ids: Vec<PeInstanceId> = arch.pes().map(|(id, _)| id).collect();
    for pid in pe_ids {
        for mode in &mut arch.pe_mut(pid).modes {
            for c in &mut mode.clusters {
                if let Some(&mapped) = cmap.get(c) {
                    *c = mapped;
                }
            }
        }
        rebuild_pe_accounting(&mut arch, &new_clustering, pid);
    }

    // Everything the new clustering has that is not already resident must
    // be placed: new graphs, the dirty region, and fault orphans alike.
    let resident: BTreeSet<ClusterId> = cmap.values().copied().collect();
    let pending: BTreeSet<ClusterId> = new_clustering
        .clusters()
        .map(|(id, _)| id)
        .filter(|id| !resident.contains(id))
        .collect();

    let mut retries_used = 0usize;
    let (mut repaired, moved, added_cost, counters) = place_with_retry(
        spec_after,
        lib,
        &options,
        &new_clustering,
        arch,
        &pending,
        &mut retries_used,
        retry_budget,
    )?;
    ensure_interface_with_unmerge(
        spec_after,
        lib,
        &options,
        &new_clustering,
        &mut repaired,
        &mut retries_used,
        retry_budget,
    )?;
    if !exact_deadlines_ok(spec_after, &repaired) {
        return Err(WarmFailure::Repair(RepairError::Internal(
            "warm re-placement violates a deadline on the exact schedule".into(),
        )));
    }

    let cluster_count = new_clustering.cluster_count();
    let report = refreshed_report(&repaired, lib, incumbent, cluster_count, counters, t0);
    Ok(WarmOutcome {
        result: SynthesisResult {
            architecture: repaired,
            clustering: new_clustering,
            report,
        },
        moved_clusters: moved.len(),
        added_cost,
        retries_used,
        in_place: false,
    })
}

/// The wider warm rung: strips the incumbent to its hardware shell (same
/// PE and link instances, empty schedule, one empty image per device) and
/// re-places the *entire* specification onto it, buying new parts only
/// where the familiar iron does not suffice. Structural faults are
/// applied before stripping, so a failed PE's slot is not carried over.
///
/// # Errors
///
/// [`WarmFailure::BadFault`] for fault deltas naming unknown instances,
/// [`WarmFailure::Repair`] when placement or interface synthesis fails —
/// the ladder escalates to the portfolio and cold rungs.
#[allow(clippy::too_many_arguments)] // the rung contract: specs, incumbent, delta, fault set, budget
pub fn widened_resynthesize(
    spec_before: &SystemSpec,
    spec_after: &SystemSpec,
    lib: &ResourceLibrary,
    options: &CosynOptions,
    incumbent: &SynthesisResult,
    delta: &SpecDelta,
    restorable: &BTreeSet<u32>,
    retry_budget: usize,
) -> Result<WarmOutcome, WarmFailure> {
    let t0 = Instant::now();
    let options = options.effective();
    let old_clustering = &incumbent.clustering;
    check_clustering(spec_before, old_clustering)?;
    let mut damaged = incumbent.architecture.clone();
    match delta {
        SpecDelta::FailPe { pe } => {
            let id = PeInstanceId::new(*pe as usize);
            kill_pe(&mut damaged, old_clustering, spec_before, id).map_err(|e| match e {
                RepairError::NoSuchPe(_) => {
                    WarmFailure::BadFault(format!("fail-pe {pe}: no such live PE instance"))
                }
                other => WarmFailure::Repair(other),
            })?;
        }
        SpecDelta::RetireLink { link } => {
            let id = LinkInstanceId::new(*link as usize);
            kill_link(&mut damaged, old_clustering, spec_before, id).map_err(|e| match e {
                RepairError::NoSuchLink(_) => {
                    WarmFailure::BadFault(format!("retire-link {link}: no such live link instance"))
                }
                other => WarmFailure::Repair(other),
            })?;
        }
        SpecDelta::RestorePe { pe }
            if restorable.contains(pe) && (*pe as usize) < damaged.pe_slots() =>
        {
            let id = PeInstanceId::new(*pe as usize);
            if damaged.pe(id).retired {
                damaged.pe_mut(id).retired = false;
            }
        }
        _ => {}
    }
    let shell = hardware_shell(&damaged);

    let new_clustering = cluster_tasks_with(spec_after, lib, &options)
        .map_err(|e| WarmFailure::Repair(RepairError::Internal(e.to_string())))?;
    let pending: BTreeSet<ClusterId> = new_clustering.clusters().map(|(id, _)| id).collect();
    let mut retries_used = 0usize;
    let (mut repaired, moved, added_cost, counters) = place_with_retry(
        spec_after,
        lib,
        &options,
        &new_clustering,
        shell,
        &pending,
        &mut retries_used,
        retry_budget,
    )?;
    ensure_interface_with_unmerge(
        spec_after,
        lib,
        &options,
        &new_clustering,
        &mut repaired,
        &mut retries_used,
        retry_budget,
    )?;
    if !exact_deadlines_ok(spec_after, &repaired) {
        return Err(WarmFailure::Repair(RepairError::Internal(
            "widened re-placement violates a deadline on the exact schedule".into(),
        )));
    }

    let cluster_count = new_clustering.cluster_count();
    let report = refreshed_report(&repaired, lib, incumbent, cluster_count, counters, t0);
    Ok(WarmOutcome {
        result: SynthesisResult {
            architecture: repaired,
            clustering: new_clustering,
            report,
        },
        moved_clusters: moved.len(),
        added_cost,
        retries_used,
        in_place: false,
    })
}

/// Checks every graph's deadlines against the *exact* placed windows —
/// the same final verification cold synthesis runs.
pub fn exact_deadlines_ok(spec: &SystemSpec, arch: &Architecture) -> bool {
    for (g, graph) in spec.graphs() {
        let finishes = estimate_finish_times(
            graph,
            |t| arch.board.window(Occupant::Task(GlobalTaskId::new(g, t))),
            |t| graph.task(t).exec.fastest().unwrap_or(Nanos::ZERO),
            |e| {
                arch.board
                    .window(Occupant::Edge(crusade_model::GlobalEdgeId::new(g, e)))
            },
            |_| Nanos::ZERO,
        );
        if !check_deadlines(graph, &finishes).is_empty() {
            return false;
        }
    }
    true
}

/// Summary figures of a warm-started architecture. Reconfiguration
/// statistics are carried from the incumbent: the warm rungs never
/// re-run device merging (they may only *un*-merge), so the incumbent's
/// report remains the sound description of the merge structure.
fn refreshed_report(
    arch: &Architecture,
    lib: &ResourceLibrary,
    incumbent: &SynthesisResult,
    cluster_count: usize,
    (candidates_tried, candidates_pruned): (usize, usize),
    t0: Instant,
) -> SynthesisReport {
    let multi_mode_devices = arch.pes().filter(|(_, p)| p.modes.len() > 1).count();
    let total_modes = arch.pes().map(|(_, p)| p.modes.len()).sum();
    SynthesisReport {
        pe_count: arch.pe_count(),
        link_count: arch.link_count(),
        cost: arch.cost(lib),
        cpu_time: t0.elapsed(),
        reconfig: incumbent.report.reconfig.clone(),
        multi_mode_devices,
        total_modes,
        cluster_count,
        candidates_tried,
        candidates_pruned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::CoSynthesis;
    use crusade_model::{
        CpuAttrs, ExecutionTimes, LinkClass, LinkType, PeClass, PeType, Task, TaskGraph,
        TaskGraphBuilder,
    };

    fn library() -> ResourceLibrary {
        let mut lib = ResourceLibrary::new();
        lib.add_pe(PeType::new(
            "cpu",
            Dollars::new(80),
            PeClass::Cpu(CpuAttrs {
                memory_bytes: 4 << 20,
                context_switch: Nanos::from_micros(5),
                comm_ports: 2,
                comm_overlap: true,
            }),
        ));
        lib.add_link(LinkType::new(
            "bus",
            Dollars::new(10),
            LinkClass::Bus,
            8,
            vec![Nanos::from_nanos(200)],
            64,
            Nanos::from_micros(1),
        ));
        lib
    }

    fn chain(name: &str, n: usize, exec_us: u64, period_us: u64) -> TaskGraph {
        let mut b = TaskGraphBuilder::new(name, Nanos::from_micros(period_us));
        let mut prev = None;
        for i in 0..n {
            let id = b.add_task(Task::new(
                format!("{name}-{i}"),
                ExecutionTimes::uniform(1, Nanos::from_micros(exec_us)),
            ));
            if let Some(p) = prev {
                b.add_edge(p, id, 64);
            }
            prev = Some(id);
        }
        b.build().unwrap()
    }

    #[test]
    fn admission_rejects_impossible_deadline() {
        // Three 100 us tasks in a chain can never finish inside 50 us.
        let spec = SystemSpec::new(vec![chain("g", 3, 100, 1000)]);
        let delta = SpecDelta::TightenDeadline {
            graph: GraphId::new(0),
            deadline: Nanos::from_micros(50),
        };
        let after = delta.apply(&spec).unwrap();
        let verdict = admission_check(&after, &delta);
        assert!(!verdict.admitted(), "got {verdict:?}");
    }

    #[test]
    fn admission_admits_feasible_tighten_and_faults() {
        let spec = SystemSpec::new(vec![chain("g", 3, 100, 1000)]);
        let delta = SpecDelta::TightenDeadline {
            graph: GraphId::new(0),
            deadline: Nanos::from_micros(600),
        };
        let after = delta.apply(&spec).unwrap();
        assert!(admission_check(&after, &delta).admitted());
        assert!(admission_check(&spec, &SpecDelta::FailPe { pe: 0 }).admitted());
    }

    #[test]
    fn tighten_within_slack_is_in_place() {
        let lib = library();
        let spec = SystemSpec::new(vec![chain("g", 2, 50, 1000)]);
        let deployed = CoSynthesis::new(&spec, &lib).run().unwrap();
        // The chain finishes well before 900 us; tightening to 900 us
        // must be absorbed with zero moves.
        let delta = SpecDelta::TightenDeadline {
            graph: GraphId::new(0),
            deadline: Nanos::from_micros(900),
        };
        let after = delta.apply(&spec).unwrap();
        let out = warm_resynthesize(
            &spec,
            &after,
            &lib,
            &CosynOptions::default(),
            &deployed,
            &delta,
            &BTreeSet::new(),
            8,
        )
        .unwrap();
        assert!(out.in_place);
        assert_eq!(out.moved_clusters, 0);
        assert_eq!(out.result.report.cost, deployed.report.cost);
    }

    #[test]
    fn add_graph_places_only_the_new_work() {
        let lib = library();
        let spec = SystemSpec::new(vec![chain("a", 2, 50, 1000)]);
        let deployed = CoSynthesis::new(&spec, &lib).run().unwrap();
        let delta = SpecDelta::AddTaskGraph {
            graph: chain("b", 2, 40, 2000),
        };
        let after = delta.apply(&spec).unwrap();
        let out = warm_resynthesize(
            &spec,
            &after,
            &lib,
            &CosynOptions::default(),
            &deployed,
            &delta,
            &BTreeSet::new(),
            8,
        )
        .unwrap();
        assert!(!out.in_place);
        assert!(out.moved_clusters >= 1);
        assert!(exact_deadlines_ok(&after, &out.result.architecture));
        // Graph a's schedule survived verbatim.
        let g0 = GraphId::new(0);
        let w_before = deployed
            .architecture
            .board
            .window(Occupant::Task(GlobalTaskId::new(
                g0,
                crusade_model::TaskId::new(0),
            )));
        let w_after = out
            .result
            .architecture
            .board
            .window(Occupant::Task(GlobalTaskId::new(
                g0,
                crusade_model::TaskId::new(0),
            )));
        assert_eq!(w_before, w_after);
    }

    #[test]
    fn remove_graph_evicts_shifted_ids() {
        let lib = library();
        let spec = SystemSpec::new(vec![
            chain("a", 2, 50, 1000),
            chain("b", 2, 40, 2000),
            chain("c", 2, 30, 4000),
        ]);
        let deployed = CoSynthesis::new(&spec, &lib).run().unwrap();
        let delta = SpecDelta::RemoveTaskGraph {
            graph: GraphId::new(1),
        };
        let after = delta.apply(&spec).unwrap();
        let out = warm_resynthesize(
            &spec,
            &after,
            &lib,
            &CosynOptions::default(),
            &deployed,
            &delta,
            &BTreeSet::new(),
            8,
        )
        .unwrap();
        assert!(exact_deadlines_ok(&after, &out.result.architecture));
        assert_eq!(out.result.clustering.cluster_count(), 2);
    }

    #[test]
    fn fail_and_restore_round_trip() {
        let lib = library();
        let spec = SystemSpec::new(vec![chain("a", 2, 50, 1000)]);
        let deployed = CoSynthesis::new(&spec, &lib).run().unwrap();
        let fail = SpecDelta::FailPe { pe: 0 };
        let failed = warm_resynthesize(
            &spec,
            &spec,
            &lib,
            &CosynOptions::default(),
            &deployed,
            &fail,
            &BTreeSet::new(),
            8,
        )
        .unwrap();
        assert!(exact_deadlines_ok(&spec, &failed.result.architecture));
        // The repair bought a replacement: cost did not drop.
        assert!(failed.result.report.cost >= deployed.report.cost);
        let restore = SpecDelta::RestorePe { pe: 0 };
        let restored = warm_resynthesize(
            &spec,
            &spec,
            &lib,
            &CosynOptions::default(),
            &failed.result,
            &restore,
            &BTreeSet::from([0u32]),
            8,
        )
        .unwrap();
        assert!(exact_deadlines_ok(&spec, &restored.result.architecture));
    }

    #[test]
    fn widened_rung_rebuilds_on_the_shell() {
        let lib = library();
        let spec = SystemSpec::new(vec![chain("a", 3, 60, 1000)]);
        let deployed = CoSynthesis::new(&spec, &lib).run().unwrap();
        let delta = SpecDelta::AddTaskGraph {
            graph: chain("b", 2, 40, 2000),
        };
        let after = delta.apply(&spec).unwrap();
        let out = widened_resynthesize(
            &spec,
            &after,
            &lib,
            &CosynOptions::default(),
            &deployed,
            &delta,
            &BTreeSet::new(),
            8,
        )
        .unwrap();
        assert!(exact_deadlines_ok(&after, &out.result.architecture));
        assert_eq!(
            out.moved_clusters,
            out.result.clustering.cluster_count(),
            "the widened rung re-places everything"
        );
    }

    #[test]
    fn bad_fault_is_terminal_not_escalatable() {
        let lib = library();
        let spec = SystemSpec::new(vec![chain("a", 2, 50, 1000)]);
        let deployed = CoSynthesis::new(&spec, &lib).run().unwrap();
        let err = warm_resynthesize(
            &spec,
            &spec,
            &lib,
            &CosynOptions::default(),
            &deployed,
            &SpecDelta::FailPe { pe: 99 },
            &BTreeSet::new(),
            8,
        )
        .unwrap_err();
        assert!(matches!(err, WarmFailure::BadFault(_)), "got {err:?}");
    }
}
