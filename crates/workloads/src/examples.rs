//! Reconstruction of the paper's eight benchmark systems (Table 2/3).
//!
//! The originals — A1TR, VDRTX, HROST, EST189A, HRXC, ADMR, B192G and
//! NG XM, between 1 126 and 7 416 tasks — are proprietary Lucent field
//! task graphs. These generators rebuild their *statistical shape*: the
//! same task counts, periods spanning 25 µs to one minute, a mix of
//! hardware datapath pipelines (FPGA-bound, operating in staggered phase
//! windows — the structure that makes dynamic reconfiguration profitable),
//! ASIC-bound line interfaces, CPLD control glue, and software
//! control/provisioning chains. Identical seeds produce identical
//! specifications.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crusade_model::{Nanos, SystemConstraints, SystemSpec, TaskGraph};

use crate::blocks::{asic_interface, cpld_glue, hw_pipeline, sw_pipeline};
use crate::library::PaperLibrary;

/// One of the paper's benchmark systems.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperExample {
    /// The paper's example name.
    pub name: &'static str,
    /// Exact task count (matches Table 2's "No. of tasks").
    pub task_count: usize,
    /// Seed for the deterministic generator.
    pub seed: u64,
    /// Number of staggered execution phases for hardware pipelines; more
    /// phases mean more temporal-sharing opportunity.
    pub phases: u64,
    /// Fraction of tasks in FPGA-bound hardware pipelines.
    pub hw_share: f64,
    /// Fraction of tasks in ASIC-bound line interfaces.
    pub asic_share: f64,
    /// Fraction of tasks in CPLD control glue.
    pub cpld_share: f64,
}

/// A small randomised system in the paper's statistical shape, for
/// property-based testing: task count, phase count and block shares all
/// derive deterministically from `seed`. Deliberately small (40 – 120
/// tasks) so a synthesis-plus-audit round trip stays in the millisecond
/// range and a proptest sweep is cheap.
pub fn random_example(seed: u64) -> PaperExample {
    let mut rng = SmallRng::seed_from_u64(seed);
    PaperExample {
        name: "RANDOM",
        task_count: rng.gen_range(40..=120),
        seed: rng.gen(),
        phases: rng.gen_range(2..=4),
        hw_share: rng.gen_range(0.25..0.50),
        asic_share: rng.gen_range(0.05..0.18),
        cpld_share: rng.gen_range(0.03..0.08),
    }
}

/// The eight examples of Tables 2 and 3, with phase/share profiles chosen
/// so the reconfiguration savings *spread* resembles the paper's
/// (≈26 % … 57 %, larger systems generally saving more).
pub fn paper_examples() -> Vec<PaperExample> {
    vec![
        PaperExample {
            name: "A1TR",
            task_count: 1126,
            seed: 0xA17B,
            phases: 3,
            hw_share: 0.44,
            asic_share: 0.10,
            cpld_share: 0.06,
        },
        PaperExample {
            name: "VDRTX",
            task_count: 1634,
            seed: 0x7D47,
            phases: 3,
            hw_share: 0.33,
            asic_share: 0.14,
            cpld_share: 0.05,
        },
        PaperExample {
            name: "HROST",
            task_count: 2645,
            seed: 0x4057,
            phases: 2,
            hw_share: 0.37,
            asic_share: 0.12,
            cpld_share: 0.06,
        },
        PaperExample {
            name: "EST189A",
            task_count: 3826,
            seed: 0xE189,
            phases: 2,
            hw_share: 0.35,
            asic_share: 0.14,
            cpld_share: 0.05,
        },
        PaperExample {
            name: "HRXC",
            task_count: 4571,
            seed: 0x44C1,
            phases: 2,
            hw_share: 0.32,
            asic_share: 0.16,
            cpld_share: 0.05,
        },
        PaperExample {
            name: "ADMR",
            task_count: 5419,
            seed: 0xAD49,
            phases: 3,
            hw_share: 0.31,
            asic_share: 0.14,
            cpld_share: 0.06,
        },
        PaperExample {
            name: "B192G",
            task_count: 6815,
            seed: 0xB192,
            phases: 4,
            hw_share: 0.38,
            asic_share: 0.10,
            cpld_share: 0.06,
        },
        PaperExample {
            name: "NGXM",
            task_count: 7416,
            seed: 0x96F1,
            phases: 4,
            hw_share: 0.46,
            asic_share: 0.08,
            cpld_share: 0.06,
        },
    ]
}

impl PaperExample {
    /// Generates the specification against the given library.
    ///
    /// # Examples
    ///
    /// ```
    /// use crusade_workloads::{paper_examples, paper_library};
    ///
    /// let lib = paper_library();
    /// let a1tr = &paper_examples()[0];
    /// let spec = a1tr.build(&lib);
    /// assert_eq!(spec.task_count(), 1126);
    /// spec.validate().unwrap();
    /// ```
    pub fn build(&self, lib: &PaperLibrary) -> SystemSpec {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut graphs: Vec<TaskGraph> = Vec::new();
        let mut remaining = self.task_count;
        let mut hw_phase = 0u64;
        let mut asic_idx = 0usize;
        let mut block = 0usize;

        // The HW phase structure: pipelines of one phase run inside their
        // slot of the 100 ms frame; slots are staggered so different
        // phases never overlap and can time-share devices.
        let hw_period = Nanos::from_millis(100);
        let slot = hw_period / self.phases;
        let span = slot * 11 / 20; // 55 % duty inside the slot

        // Anchor graphs covering the paper's period extremes: a 25 us
        // cell-processing pipeline and a one-minute provisioning chain.
        if remaining > 16 {
            graphs.push(hw_pipeline(
                lib,
                &mut rng,
                &format!("{}-cell25us", self.name),
                4,
                Nanos::from_micros(25),
                Nanos::ZERO,
                Nanos::from_micros(20),
                120,
            ));
            graphs.push(sw_pipeline(
                lib,
                &mut rng,
                &format!("{}-provision", self.name),
                12,
                Nanos::from_secs(60),
            ));
            remaining -= 16;
        }

        while remaining > 0 {
            if remaining <= 3 {
                graphs.push(sw_pipeline(
                    lib,
                    &mut rng,
                    &format!("{}-tail", self.name),
                    remaining,
                    Nanos::from_millis(100),
                ));
                break;
            }
            block += 1;
            let r: f64 = rng.gen();
            if r < self.hw_share {
                let n = rng.gen_range(4..=8).min(remaining);
                let pfus = rng.gen_range(250..650);
                let phase = hw_phase % self.phases;
                hw_phase += 1;
                graphs.push(hw_pipeline(
                    lib,
                    &mut rng,
                    &format!("{}-dp{block}", self.name),
                    n,
                    hw_period,
                    slot * phase,
                    span,
                    pfus,
                ));
                remaining -= n;
            } else if r < self.hw_share + self.asic_share {
                let n = rng.gen_range(4..=7).min(remaining).max(3);
                let asic = lib.asics[asic_idx % lib.asics.len()];
                asic_idx += 1;
                graphs.push(asic_interface(
                    lib,
                    &mut rng,
                    &format!("{}-line{block}", self.name),
                    n,
                    asic,
                    Nanos::from_secs(1),
                ));
                remaining -= n;
            } else if r < self.hw_share + self.asic_share + self.cpld_share {
                let n = rng.gen_range(3..=5).min(remaining);
                let phase = hw_phase % self.phases;
                hw_phase += 1;
                graphs.push(cpld_glue(
                    lib,
                    &mut rng,
                    &format!("{}-glue{block}", self.name),
                    n,
                    hw_period,
                    slot * phase,
                    span,
                ));
                remaining -= n;
            } else {
                let n = rng.gen_range(6..=14).min(remaining);
                let menu = [
                    Nanos::from_millis(1),
                    Nanos::from_millis(10),
                    Nanos::from_millis(100),
                    Nanos::from_secs(1),
                ];
                let period = menu[rng.gen_range(0..menu.len())];
                graphs.push(sw_pipeline(
                    lib,
                    &mut rng,
                    &format!("{}-ctl{block}", self.name),
                    n,
                    period,
                ));
                remaining -= n;
            }
        }

        SystemSpec::new(graphs).with_constraints(SystemConstraints {
            boot_time_requirement: Nanos::from_millis(5),
            preemption_overhead: Nanos::from_micros(60),
            average_link_ports: 4,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::paper_library;

    #[test]
    fn all_examples_have_exact_task_counts() {
        let lib = paper_library();
        for ex in paper_examples() {
            let spec = ex.build(&lib);
            assert_eq!(
                spec.task_count(),
                ex.task_count,
                "task count mismatch for {}",
                ex.name
            );
            spec.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", ex.name));
        }
    }

    #[test]
    fn examples_are_deterministic() {
        let lib = paper_library();
        let ex = &paper_examples()[0];
        assert_eq!(ex.build(&lib), ex.build(&lib));
    }

    #[test]
    fn period_range_matches_paper() {
        let lib = paper_library();
        let spec = paper_examples()[0].build(&lib);
        let periods: Vec<Nanos> = spec.graphs().map(|(_, g)| g.period()).collect();
        assert!(periods.contains(&Nanos::from_micros(25)));
        assert!(periods.contains(&Nanos::from_secs(60)));
        // Hyperperiod stays computable.
        assert_eq!(spec.hyperperiod().unwrap(), Nanos::from_secs(60));
    }

    #[test]
    fn phases_stagger_hw_windows() {
        let lib = paper_library();
        let ex = &paper_examples()[7]; // NGXM, 5 phases
        let spec = ex.build(&lib);
        let ests: std::collections::HashSet<Nanos> = spec
            .graphs()
            .filter(|(_, g)| g.name().contains("-dp"))
            .map(|(_, g)| g.est())
            .collect();
        assert!(
            ests.len() >= 4,
            "expected several distinct phases, got {ests:?}"
        );
    }
}
