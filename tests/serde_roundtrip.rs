//! Serialization round-trips: specifications and libraries survive JSON —
//! the contract behind the `crusade` CLI's spec files.

// Test code: helpers unwrap and cast freely on controlled inputs.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use crusade::model::{ResourceLibrary, SystemSpec};
use crusade::workloads::{paper_examples, paper_library};

#[test]
fn paper_library_round_trips() {
    let lib = paper_library();
    let json = serde_json::to_string(&lib.lib).unwrap();
    let back: ResourceLibrary = serde_json::from_str(&json).unwrap();
    assert_eq!(lib.lib, back);
}

#[test]
fn full_spec_round_trips() {
    let lib = paper_library();
    let spec = paper_examples()[0].build(&lib);
    let json = serde_json::to_string(&spec).unwrap();
    let back: SystemSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(spec, back);
    back.validate().unwrap();
}

#[test]
fn deserialized_spec_synthesizes_identically() {
    use crusade::core::CoSynthesis;
    let lib = paper_library();
    let spec = paper_examples()[0].build(&lib);
    let back: SystemSpec = serde_json::from_str(&serde_json::to_string(&spec).unwrap()).unwrap();
    let a = CoSynthesis::new(&spec, &lib.lib).run().unwrap();
    let b = CoSynthesis::new(&back, &lib.lib).run().unwrap();
    assert_eq!(a.report.cost, b.report.cost);
    assert_eq!(a.report.pe_count, b.report.pe_count);
}

#[test]
fn malformed_spec_is_rejected_cleanly() {
    let err = serde_json::from_str::<SystemSpec>("{\"graphs\": 3}").unwrap_err();
    assert!(err.to_string().contains("invalid"));
}

#[test]
fn damage_round_trips() {
    use crusade::core::Damage;
    let damages = [
        Damage::ExecInflated,
        Damage::ErufTightened,
        Damage::BootDegraded,
    ];
    for damage in damages {
        let json = serde_json::to_string(&damage).unwrap();
        let back: Damage = serde_json::from_str(&json).unwrap();
        assert_eq!(damage, back, "{json}");
    }
}

#[test]
fn repair_outcome_round_trips() {
    use crusade::core::{repair, CoSynthesis, CosynOptions, Damage, RepairOptions, RepairOutcome};
    let lib = paper_library();
    let spec = paper_examples()[0].build(&lib);
    let options = CosynOptions::default();
    let deployed = CoSynthesis::new(&spec, &lib.lib)
        .with_options(options.clone())
        .run()
        .unwrap();
    let dead = deployed
        .architecture
        .pes()
        .map(|(id, _)| id)
        .next()
        .expect("deployed architecture has a live PE");
    let outcome = repair(
        &spec,
        &lib.lib,
        &options,
        &deployed,
        &Damage::PeLost(dead),
        &RepairOptions::default(),
    )
    .expect("a lone PE loss is repairable");
    // `RepairOutcome` carries the full architecture, which has no
    // `PartialEq`: a faithful round-trip re-serializes to the same JSON.
    let json = serde_json::to_string(&outcome).unwrap();
    let back: RepairOutcome = serde_json::from_str(&json).unwrap();
    assert_eq!(json, serde_json::to_string(&back).unwrap());
    assert_eq!(outcome.moved_clusters, back.moved_clusters);
    assert_eq!(outcome.added_cost, back.added_cost);
    assert_eq!(outcome.new_pes, back.new_pes);
}
