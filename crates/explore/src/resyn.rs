//! The escalation-ladder driver for online re-synthesis.
//!
//! [`resynthesize_sequence`] consumes a stream of [`SpecDelta`]s against
//! a deployed incumbent and, for each delta, climbs a deterministic
//! ladder of increasingly expensive rungs until one produces an
//! **audit-clean** architecture:
//!
//! 1. **warm** — dirty-region repair from the incumbent
//!    ([`crusade_core::warm_resynthesize`]; reported as `in-place` when
//!    the incumbent absorbs the delta with zero moves);
//! 2. **widened** — the incumbent stripped to its hardware shell, the
//!    whole specification re-placed onto the familiar iron
//!    ([`crusade_core::widened_resynthesize`]);
//! 3. **portfolio** — a multi-start exploration over the new
//!    specification ([`crate::explore_portfolio`]);
//! 4. **cold** — single-policy cold co-synthesis with the audit post-pass.
//!
//! Every escalation is traced ([`Event::EscalationStep`]) with the
//! trigger that forced it, and the two warm rungs are *never trusted*:
//! their results must pass the full `crusade-verify` audit (installed via
//! `crusade_verify::install_auditor`) before being accepted — a dirty
//! audit is itself an escalation trigger, so the accepted architecture is
//! audit-clean at every rung by construction.
//!
//! The ladder is deterministic: warm rungs are single-threaded, the
//! portfolio rung is jobs-invariant by `crusade-explore`'s reduction
//! guarantee, and no wall-clock value feeds any decision — the same
//! delta sequence over the same seed architecture yields the same rung
//! path and a bit-identical final architecture at any `--jobs`.

use std::collections::BTreeSet;

use serde::Serialize;

use crusade_core::{
    admission_check, audit_hook, warm_resynthesize, widened_resynthesize, CoSynthesis,
    CosynOptions, SynthesisResult, WarmFailure, WarmOutcome,
};
use crusade_model::{DeltaError, ResourceLibrary, SpecDelta, SystemSpec};
use crusade_obs::Event;

use crate::{default_portfolio, ExploreConfig};

/// Knobs of the escalation ladder.
#[derive(Debug, Clone)]
pub struct ResynConfig {
    /// Worker threads for the portfolio rung (warm rungs are
    /// single-threaded by design; the final architecture is identical at
    /// any value).
    pub jobs: usize,
    /// Portfolio size for the portfolio rung.
    pub portfolio: usize,
    /// Victim-retry budget of the warm rungs.
    pub retry_budget: usize,
    /// First rung to try. [`Rung::Warm`] (the default) climbs the full
    /// ladder; a higher start skips the warm rungs — an operational
    /// escape hatch for forcing a restart (e.g. after suspected
    /// incumbent corruption) that still keeps the sequence's
    /// bookkeeping and report.
    pub start: Rung,
    /// Base synthesis options (observer, knobs) shared by every rung.
    pub base: CosynOptions,
}

impl Default for ResynConfig {
    fn default() -> Self {
        ResynConfig {
            jobs: 1,
            portfolio: 4,
            retry_budget: 8,
            start: Rung::Warm,
            base: CosynOptions::default(),
        }
    }
}

/// The ladder rung that finally produced an accepted architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[serde(rename_all = "kebab-case")]
pub enum Rung {
    /// The incumbent absorbed the delta with zero moves.
    InPlace,
    /// Dirty-region warm repair.
    Warm,
    /// Hardware-shell re-placement.
    Widened,
    /// Multi-start exploration (degraded: warm starts failed).
    Portfolio,
    /// Cold co-synthesis (fully degraded).
    Cold,
}

impl Rung {
    /// Stable kebab-case tag (trace and benchmark vocabulary).
    pub fn tag(self) -> &'static str {
        match self {
            Rung::InPlace => "in-place",
            Rung::Warm => "warm",
            Rung::Widened => "widened",
            Rung::Portfolio => "portfolio",
            Rung::Cold => "cold",
        }
    }

    /// `true` for the rungs that count as graceful degradation (the
    /// warm-start premise failed and synthesis started over).
    pub fn degraded(self) -> bool {
        matches!(self, Rung::Portfolio | Rung::Cold)
    }

    /// Ladder position, lowest (cheapest) first. `InPlace` shares the
    /// warm rung's position: it is the warm rung's zero-move outcome,
    /// not a rung of its own.
    fn rank(self) -> u8 {
        match self {
            Rung::InPlace | Rung::Warm => 0,
            Rung::Widened => 1,
            Rung::Portfolio => 2,
            Rung::Cold => 3,
        }
    }

    /// Parses a kebab-case rung tag (the [`Rung::tag`] vocabulary).
    pub fn parse(tag: &str) -> Option<Rung> {
        match tag {
            "in-place" => Some(Rung::InPlace),
            "warm" => Some(Rung::Warm),
            "widened" => Some(Rung::Widened),
            "portfolio" => Some(Rung::Portfolio),
            "cold" => Some(Rung::Cold),
            _ => None,
        }
    }
}

/// One delta's journey up the ladder.
#[derive(Debug, Clone, Serialize)]
pub struct DeltaStep {
    /// Position in the delta sequence.
    pub index: usize,
    /// [`SpecDelta::kind`] tag.
    pub kind: String,
    /// Whether the admission check admitted the delta.
    pub admitted: bool,
    /// The admission reason (`"ok"` when admitted).
    pub admission_reason: String,
    /// The rung that produced the accepted architecture.
    pub rung: Rung,
    /// Escalation triggers, in rung order (empty when the first rung
    /// succeeded).
    pub triggers: Vec<String>,
    /// Clusters (re-)placed by the accepted rung.
    pub moved_clusters: usize,
    /// Incremental dollar cost of parts the accepted rung purchased.
    pub added_cost: u64,
    /// Total architecture cost after this delta.
    pub cost: u64,
    /// Victim-retry iterations the accepted rung consumed.
    pub retries: usize,
}

/// The full sequence's report (serialized into `crusade resyn --out` and
/// the soak campaign's records).
#[derive(Debug, Clone, Serialize)]
pub struct ResynReport {
    /// Per-delta records, in sequence order.
    pub steps: Vec<DeltaStep>,
    /// Final architecture cost.
    pub final_cost: u64,
    /// `true` when any delta degraded to the portfolio or cold rung.
    pub degraded: bool,
}

impl ResynReport {
    /// Rung histogram: how many deltas each rung finally served.
    pub fn rung_histogram(&self) -> Vec<(&'static str, usize)> {
        [
            Rung::InPlace,
            Rung::Warm,
            Rung::Widened,
            Rung::Portfolio,
            Rung::Cold,
        ]
        .into_iter()
        .map(|r| (r.tag(), self.steps.iter().filter(|s| s.rung == r).count()))
        .collect()
    }
}

/// A completed sequence: the final system plus the journey.
#[derive(Debug)]
pub struct ResynOutcome {
    /// The specification after every delta.
    pub spec: SystemSpec,
    /// The final (audit-clean) deployed system.
    pub incumbent: SynthesisResult,
    /// Per-delta records and aggregates.
    pub report: ResynReport,
}

/// Why a sequence stopped. All variants are *operational* outcomes — the
/// ladder never panics on well-formed input.
#[derive(Debug)]
pub enum ResynError {
    /// A delta could not be applied to the evolving specification.
    Delta {
        /// Position in the sequence.
        index: usize,
        /// The typed application error.
        error: DeltaError,
    },
    /// The admission check proved the delta infeasible for any
    /// architecture.
    Rejected {
        /// Position in the sequence.
        index: usize,
        /// The necessary condition that failed.
        reason: String,
    },
    /// A structural fault named a PE or link instance the incumbent does
    /// not have.
    BadFault {
        /// Position in the sequence.
        index: usize,
        /// What was wrong.
        detail: String,
    },
    /// Even cold co-synthesis failed — the delta made the specification
    /// genuinely unsynthesizable with this library.
    Infeasible {
        /// Position in the sequence.
        index: usize,
        /// The cold-synthesis error.
        detail: String,
    },
    /// No auditor is installed; the audit-clean guarantee cannot be
    /// upheld. Call `crusade_verify::install_auditor` first.
    NoAuditor,
}

impl std::fmt::Display for ResynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResynError::Delta { index, error } => {
                write!(f, "delta {index} does not apply: {error}")
            }
            ResynError::Rejected { index, reason } => {
                write!(f, "delta {index} rejected by admission: {reason}")
            }
            ResynError::BadFault { index, detail } => {
                write!(f, "delta {index} is an invalid fault: {detail}")
            }
            ResynError::Infeasible { index, detail } => {
                write!(f, "delta {index} infeasible even cold: {detail}")
            }
            ResynError::NoAuditor => write!(
                f,
                "no auditor installed (call crusade_verify::install_auditor before resynthesis)"
            ),
        }
    }
}

impl std::error::Error for ResynError {}

/// Drives `deltas` through the escalation ladder, starting from the
/// deployed `incumbent` synthesized for `spec0`.
///
/// Structural-fault bookkeeping: [`SpecDelta::FailPe`] instances are
/// remembered and may be un-retired by a later [`SpecDelta::RestorePe`]
/// — but only while the architecture keeps warm-start instance identity.
/// The widened, portfolio and cold rungs rebuild (and renumber) the
/// platform, so accepting one of them forgets the failed-instance set;
/// a restore of a forgotten instance is a deterministic no-op.
///
/// # Errors
///
/// Typed [`ResynError`] for malformed deltas, admission rejections,
/// invalid faults, cold infeasibility and a missing auditor. Any error
/// leaves the sequence at the last accepted incumbent (the error carries
/// the failing index).
pub fn resynthesize_sequence(
    spec0: &SystemSpec,
    lib: &ResourceLibrary,
    incumbent0: SynthesisResult,
    deltas: &[SpecDelta],
    config: &ResynConfig,
) -> Result<ResynOutcome, ResynError> {
    let Some(auditor) = audit_hook() else {
        return Err(ResynError::NoAuditor);
    };
    let options = config.base.effective();
    let observer = options.observer.clone();
    let _resyn_span = observer.span("resyn");

    let mut spec = spec0.clone();
    let mut incumbent = incumbent0;
    let mut failed: BTreeSet<u32> = BTreeSet::new();
    let mut steps: Vec<DeltaStep> = Vec::with_capacity(deltas.len());

    for (index, delta) in deltas.iter().enumerate() {
        observer.emit(|| Event::DeltaApplied {
            delta: index as u64,
            kind: delta.kind().to_string(),
        });
        let spec_after = delta
            .apply(&spec)
            .map_err(|error| ResynError::Delta { index, error })?;

        let verdict = {
            let _span = observer.span("admission");
            admission_check(&spec_after, delta)
        };
        observer.emit(|| Event::AdmissionChecked {
            delta: index as u64,
            admitted: verdict.admitted(),
            reason: verdict.reason().to_string(),
        });
        if !verdict.admitted() {
            return Err(ResynError::Rejected {
                index,
                reason: verdict.reason().to_string(),
            });
        }

        let mut triggers: Vec<String> = Vec::new();
        let mut accepted: Option<(Rung, SynthesisResult, usize, u64, usize)> = None;

        // Rung 1: dirty-region warm repair (reported as in-place when
        // the incumbent absorbed the delta without moving anything).
        if config.start.rank() <= Rung::Warm.rank() {
            let warm = {
                let _span = observer.span("warm");
                warm_resynthesize(
                    &spec,
                    &spec_after,
                    lib,
                    &options,
                    &incumbent,
                    delta,
                    &failed,
                    config.retry_budget,
                )
            };
            match audited(warm, &spec_after, lib, &options, auditor) {
                RungVerdict::Accept(out) => {
                    let rung = if out.in_place {
                        Rung::InPlace
                    } else {
                        Rung::Warm
                    };
                    accepted = Some(step_figures(rung, *out));
                }
                RungVerdict::BadFault(detail) => {
                    return Err(ResynError::BadFault { index, detail })
                }
                RungVerdict::Escalate(trigger) => {
                    observer.emit(|| Event::EscalationStep {
                        delta: index as u64,
                        rung: Rung::Widened.tag().to_string(),
                        trigger: trigger.clone(),
                    });
                    triggers.push(trigger);
                }
            }
        }

        // Rung 2: hardware-shell re-placement.
        if accepted.is_none() && config.start.rank() <= Rung::Widened.rank() {
            let widened = {
                let _span = observer.span("widened");
                widened_resynthesize(
                    &spec,
                    &spec_after,
                    lib,
                    &options,
                    &incumbent,
                    delta,
                    &failed,
                    config.retry_budget,
                )
            };
            match audited(widened, &spec_after, lib, &options, auditor) {
                RungVerdict::Accept(out) => {
                    accepted = Some(step_figures(Rung::Widened, *out));
                }
                RungVerdict::BadFault(detail) => {
                    return Err(ResynError::BadFault { index, detail })
                }
                RungVerdict::Escalate(trigger) => {
                    observer.emit(|| Event::EscalationStep {
                        delta: index as u64,
                        rung: Rung::Portfolio.tag().to_string(),
                        trigger: trigger.clone(),
                    });
                    triggers.push(trigger);
                }
            }
        }

        // Rung 3: portfolio warm restart (audit-clean by construction).
        if accepted.is_none() && config.start.rank() <= Rung::Portfolio.rank() {
            let explored = {
                let _span = observer.span("portfolio");
                let xc = ExploreConfig {
                    portfolio: config.portfolio,
                    jobs: config.jobs,
                    base: config.base.clone(),
                    share_cache: true,
                    cancel: None,
                };
                crate::explore_portfolio(
                    &spec_after,
                    lib,
                    &xc,
                    &default_portfolio(config.portfolio),
                )
            };
            match explored {
                Ok(outcome) => {
                    let cost = outcome.winner.report.cost.amount();
                    let moved = outcome.winner.report.cluster_count;
                    accepted = Some((Rung::Portfolio, outcome.winner, moved, cost, 0));
                }
                Err(e) => {
                    let trigger = e.to_string();
                    observer.emit(|| Event::EscalationStep {
                        delta: index as u64,
                        rung: Rung::Cold.tag().to_string(),
                        trigger: trigger.clone(),
                    });
                    triggers.push(trigger);
                }
            }
        }

        // Rung 4: cold co-synthesis with the audit post-pass.
        let (rung, result, moved, added_cost, retries) = match accepted {
            Some(figures) => figures,
            None => {
                let cold = {
                    let _span = observer.span("cold");
                    let mut cold_options = config.base.clone();
                    cold_options.audit = true;
                    CoSynthesis::new(&spec_after, lib)
                        .with_options(cold_options)
                        .run()
                };
                match cold {
                    Ok(result) => {
                        let cost = result.report.cost.amount();
                        let moved = result.report.cluster_count;
                        (Rung::Cold, result, moved, cost, 0)
                    }
                    Err(e) => {
                        return Err(ResynError::Infeasible {
                            index,
                            detail: e.to_string(),
                        })
                    }
                }
            }
        };

        observer.emit(|| Event::ResynStepComplete {
            delta: index as u64,
            rung: rung.tag().to_string(),
            cost: result.report.cost.amount(),
            moved: moved as u64,
        });

        // Fault bookkeeping (see the doc comment): warm rungs keep
        // instance identity; everything wider renumbers and forgets.
        match rung {
            Rung::InPlace | Rung::Warm => match delta {
                SpecDelta::FailPe { pe } => {
                    failed.insert(*pe);
                }
                SpecDelta::RestorePe { pe } => {
                    failed.remove(pe);
                }
                _ => {}
            },
            Rung::Widened | Rung::Portfolio | Rung::Cold => failed.clear(),
        }

        steps.push(DeltaStep {
            index,
            kind: delta.kind().to_string(),
            admitted: true,
            admission_reason: "ok".to_string(),
            rung,
            triggers,
            moved_clusters: moved,
            added_cost,
            cost: result.report.cost.amount(),
            retries,
        });
        spec = spec_after;
        incumbent = result;
    }

    let final_cost = incumbent.report.cost.amount();
    let degraded = steps.iter().any(|s| s.rung.degraded());
    Ok(ResynOutcome {
        spec,
        incumbent,
        report: ResynReport {
            steps,
            final_cost,
            degraded,
        },
    })
}

/// How one warm rung resolved after the audit.
enum RungVerdict {
    Accept(Box<WarmOutcome>),
    BadFault(String),
    Escalate(String),
}

/// Audits a warm rung's outcome with the installed auditor; any
/// violation (or rung failure) becomes an escalation trigger.
fn audited(
    outcome: Result<WarmOutcome, WarmFailure>,
    spec_after: &SystemSpec,
    lib: &ResourceLibrary,
    options: &CosynOptions,
    auditor: crusade_core::AuditHook,
) -> RungVerdict {
    match outcome {
        Ok(out) => {
            let violations = auditor(spec_after, lib, options, &out.result);
            if violations.is_empty() {
                RungVerdict::Accept(Box::new(out))
            } else {
                RungVerdict::Escalate(format!(
                    "audit-dirty ({} violations: {})",
                    violations.len(),
                    violations.first().map(String::as_str).unwrap_or("?")
                ))
            }
        }
        Err(WarmFailure::BadFault(detail)) => RungVerdict::BadFault(detail),
        Err(e) => RungVerdict::Escalate(e.to_string()),
    }
}

/// Extracts the per-step figures from an accepted warm outcome.
fn step_figures(rung: Rung, out: WarmOutcome) -> (Rung, SynthesisResult, usize, u64, usize) {
    (
        rung,
        out.result,
        out.moved_clusters,
        out.added_cost.amount(),
        out.retries_used,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crusade_model::{GraphId, Nanos};
    use crusade_workloads::blocks::sw_pipeline;
    use crusade_workloads::{paper_library, random_example};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn deployed(seed: u64) -> (crusade_model::ResourceLibrary, SystemSpec, SynthesisResult) {
        crusade_verify::install_auditor();
        let paper = paper_library();
        let spec = random_example(seed).build(&paper);
        let incumbent = CoSynthesis::new(&spec, &paper.lib).run().unwrap();
        (paper.lib, spec, incumbent)
    }

    fn extra_graph(name: &str) -> crusade_model::TaskGraph {
        let paper = paper_library();
        let mut rng = SmallRng::seed_from_u64(0xF00D);
        sw_pipeline(&paper, &mut rng, name, 4, Nanos::from_millis(20))
    }

    #[test]
    fn fault_burst_stays_warm_and_restores() {
        let (lib, spec, incumbent) = deployed(11);
        let deltas = vec![SpecDelta::FailPe { pe: 0 }, SpecDelta::RestorePe { pe: 0 }];
        let out = resynthesize_sequence(&spec, &lib, incumbent, &deltas, &ResynConfig::default())
            .unwrap();
        assert_eq!(out.report.steps.len(), 2);
        for step in &out.report.steps {
            assert!(
                matches!(step.rung, Rung::InPlace | Rung::Warm),
                "fault burst escalated: {step:?}"
            );
        }
        assert!(!out.report.degraded);
    }

    #[test]
    fn add_graph_warm_starts() {
        let (lib, spec, incumbent) = deployed(12);
        let deltas = vec![SpecDelta::AddTaskGraph {
            graph: extra_graph("late-feature"),
        }];
        let out = resynthesize_sequence(&spec, &lib, incumbent, &deltas, &ResynConfig::default())
            .unwrap();
        assert_eq!(out.spec.graph_count(), spec.graph_count() + 1);
        assert_eq!(out.report.steps[0].rung, Rung::Warm);
        assert!(crusade_core::exact_deadlines_ok(
            &out.spec,
            &out.incumbent.architecture
        ));
    }

    #[test]
    fn impossible_tighten_is_rejected_not_synthesized() {
        let (lib, spec, incumbent) = deployed(13);
        let deltas = vec![SpecDelta::TightenDeadline {
            graph: GraphId::new(0),
            deadline: Nanos::from_nanos(1),
        }];
        let err = resynthesize_sequence(&spec, &lib, incumbent, &deltas, &ResynConfig::default())
            .unwrap_err();
        assert!(
            matches!(err, ResynError::Rejected { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn ladder_is_jobs_invariant() {
        let (lib, spec, incumbent) = deployed(14);
        let deltas = vec![
            SpecDelta::AddTaskGraph {
                graph: extra_graph("feature-a"),
            },
            SpecDelta::FailPe { pe: 1 },
        ];
        let run = |jobs: usize| {
            let config = ResynConfig {
                jobs,
                ..ResynConfig::default()
            };
            resynthesize_sequence(&spec, &lib, incumbent.clone(), &deltas, &config).unwrap()
        };
        let a = run(1);
        let b = run(4);
        let rungs = |o: &ResynOutcome| o.report.steps.iter().map(|s| s.rung).collect::<Vec<_>>();
        assert_eq!(rungs(&a), rungs(&b));
        assert_eq!(a.report.final_cost, b.report.final_cost);
        assert_eq!(a.incumbent.report.pe_count, b.incumbent.report.pe_count);
    }
}
