//! Negotiated-congestion routing (a compact PathFinder).
//!
//! Nets are routed one at a time by Dijkstra over the channel graph; the
//! cost of a channel grows with its present overuse and with a history term
//! accumulated across iterations, so congested channels are progressively
//! avoided. Routing succeeds when no channel carries more nets than it has
//! tracks; if overuse persists after the iteration budget the circuit is
//! *not routable* — exactly the outcome Table 1 reports for large circuits
//! at 100 % utilisation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::device::{Fabric, Site};

/// A two-terminal routing request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteRequest {
    /// Source site.
    pub from: Site,
    /// Destination site.
    pub to: Site,
}

/// A successfully routed net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutedNet {
    /// The request this answers.
    pub request: RouteRequest,
    /// Channel indices (see [`Fabric::channel_index`]) along the path.
    pub channels: Vec<usize>,
}

impl RoutedNet {
    /// Path length in channel segments.
    pub fn length(&self) -> u32 {
        // A route never visits more channels than the fabric has, far
        // below u32::MAX.
        #[allow(clippy::cast_possible_truncation)]
        {
            self.channels.len() as u32
        }
    }
}

/// Outcome of routing a whole netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingOutcome {
    /// Routed nets, in request order.
    pub nets: Vec<RoutedNet>,
    /// Negotiation iterations used.
    pub iterations: u32,
    /// Peak channel occupancy over the final routing.
    pub peak_usage: u32,
    /// Final per-channel occupancy, indexed by [`Fabric::channel_index`].
    pub channel_usage: Vec<u32>,
}

impl RoutingOutcome {
    /// Total wirelength in channel segments.
    pub fn total_wirelength(&self) -> u64 {
        self.nets.iter().map(|n| n.length() as u64).sum()
    }
}

/// Routing failed: congestion could not be resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnroutableError {
    /// Channels still over capacity after the final iteration.
    pub overused_channels: usize,
}

impl std::fmt::Display for UnroutableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "not routable: {} channels remain over capacity",
            self.overused_channels
        )
    }
}

impl std::error::Error for UnroutableError {}

/// The negotiated-congestion router.
#[derive(Debug, Clone)]
pub struct Router {
    max_iterations: u32,
    /// Cost added per unit of present overuse on a channel.
    present_penalty: u64,
    /// History cost added per unit of overuse after each iteration.
    history_increment: u64,
}

impl Default for Router {
    fn default() -> Self {
        Router {
            max_iterations: 24,
            present_penalty: 40,
            history_increment: 4,
        }
    }
}

impl Router {
    /// A router with a custom iteration budget.
    pub fn with_max_iterations(max_iterations: u32) -> Self {
        Router {
            max_iterations,
            ..Router::default()
        }
    }

    /// Routes all `requests` on `fabric`.
    ///
    /// # Errors
    ///
    /// Returns [`UnroutableError`] when congestion cannot be eliminated
    /// within the iteration budget.
    pub fn route(
        &self,
        fabric: &Fabric,
        requests: &[RouteRequest],
    ) -> Result<RoutingOutcome, UnroutableError> {
        let n_channels = fabric.channel_count();
        // Fault-injection hook: jammed tracks shrink every channel.
        let cap = fabric
            .tracks_per_channel()
            .saturating_sub(crate::fault::jammed_tracks());
        let mut history = vec![0u64; n_channels];
        let mut last_overused = usize::MAX;

        for iteration in 1..=self.max_iterations {
            let mut usage = vec![0u32; n_channels];
            let mut nets = Vec::with_capacity(requests.len());
            for req in requests {
                let channels = self.dijkstra(fabric, *req, &usage, &history, cap);
                for &c in &channels {
                    usage[c] += 1;
                }
                nets.push(RoutedNet {
                    request: *req,
                    channels,
                });
            }
            let overused: Vec<usize> = (0..n_channels).filter(|&c| usage[c] > cap).collect();
            if overused.is_empty() {
                let peak_usage = usage.iter().copied().max().unwrap_or(0);
                return Ok(RoutingOutcome {
                    nets,
                    iterations: iteration,
                    peak_usage,
                    channel_usage: usage,
                });
            }
            for &c in &overused {
                history[c] += self.history_increment * (usage[c] - cap) as u64;
            }
            last_overused = overused.len();
        }
        Err(UnroutableError {
            overused_channels: last_overused,
        })
    }

    /// Shortest path from `req.from` to `req.to` under the current channel
    /// costs. Returns the channel indices of the path (empty when source
    /// equals destination).
    fn dijkstra(
        &self,
        fabric: &Fabric,
        req: RouteRequest,
        usage: &[u32],
        history: &[u64],
        cap: u32,
    ) -> Vec<usize> {
        let w = fabric.width() as usize;
        let h = fabric.height() as usize;
        let idx = |s: Site| s.y as usize * w + s.x as usize;
        let mut dist = vec![u64::MAX; w * h];
        let mut prev: Vec<Option<(Site, usize)>> = vec![None; w * h];
        let mut heap = BinaryHeap::new();
        dist[idx(req.from)] = 0;
        heap.push(Reverse((0u64, req.from.x, req.from.y)));
        while let Some(Reverse((d, x, y))) = heap.pop() {
            let s = Site::new(x, y);
            if d > dist[idx(s)] {
                continue;
            }
            if s == req.to {
                break;
            }
            for (next, ch) in fabric.neighbours(s) {
                let c = fabric.channel_index(ch);
                // Base cost 10 per segment; congestion and history are
                // negotiated on top.
                let over = (usage[c] + 1).saturating_sub(cap) as u64;
                let cost = 10 + history[c] + over * self.present_penalty;
                let nd = d + cost;
                if nd < dist[idx(next)] {
                    dist[idx(next)] = nd;
                    prev[idx(next)] = Some((s, c));
                    heap.push(Reverse((nd, next.x, next.y)));
                }
            }
        }
        // Walk back.
        let mut channels = Vec::new();
        let mut cur = req.to;
        while cur != req.from {
            match prev[idx(cur)] {
                Some((p, c)) => {
                    channels.push(c);
                    cur = p;
                }
                None => break, // unreachable only on a degenerate fabric
            }
        }
        channels.reverse();
        channels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(a: (u16, u16), b: (u16, u16)) -> RouteRequest {
        RouteRequest {
            from: Site::new(a.0, a.1),
            to: Site::new(b.0, b.1),
        }
    }

    #[test]
    fn single_net_takes_manhattan_shortest_path() {
        let f = Fabric::new(5, 5, 2, 16);
        let out = Router::default().route(&f, &[req((0, 0), (3, 2))]).unwrap();
        assert_eq!(out.nets[0].length(), 5);
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn zero_length_net() {
        let f = Fabric::new(3, 3, 1, 8);
        let out = Router::default().route(&f, &[req((1, 1), (1, 1))]).unwrap();
        assert_eq!(out.nets[0].length(), 0);
    }

    #[test]
    fn congestion_forces_detours() {
        // Two identical nets on single-track channels: one takes the
        // straight row, the other must detour around it.
        let f = Fabric::new(3, 3, 1, 8);
        let requests = vec![req((0, 0), (2, 0)), req((0, 0), (2, 0))];
        let out = Router::default().route(&f, &requests).unwrap();
        assert!(out.peak_usage <= 1);
        // Straight path is 2; the detour adds at least 2 more segments.
        assert!(out.total_wirelength() >= 6);
        let lengths: Vec<u32> = out.nets.iter().map(|n| n.length()).collect();
        assert!(
            lengths.contains(&2),
            "one net keeps the short path: {lengths:?}"
        );
    }

    #[test]
    fn impossible_demand_is_unroutable() {
        // 2x2 fabric with 1 track: 8 nets between opposite corners cannot
        // all fit (only 4 channels exist).
        let f = Fabric::new(2, 2, 1, 4);
        let requests: Vec<RouteRequest> = (0..8).map(|_| req((0, 0), (1, 1))).collect();
        let err = Router::default().route(&f, &requests).unwrap_err();
        assert!(err.overused_channels > 0);
        assert!(err.to_string().contains("not routable"));
    }

    #[test]
    fn routing_is_deterministic() {
        let f = Fabric::new(6, 6, 2, 16);
        let requests = vec![
            req((0, 0), (5, 5)),
            req((5, 0), (0, 5)),
            req((2, 1), (3, 4)),
        ];
        let a = Router::default().route(&f, &requests).unwrap();
        let b = Router::default().route(&f, &requests).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn paths_are_connected_and_end_to_end() {
        let f = Fabric::new(6, 4, 2, 16);
        let r = req((1, 1), (5, 3));
        let out = Router::default().route(&f, &[r]).unwrap();
        // Length equals manhattan distance (free fabric => shortest).
        assert_eq!(out.nets[0].length(), r.from.distance(r.to));
    }
}
