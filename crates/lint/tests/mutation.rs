//! Mutation tests for the Error-level lint classes.
//!
//! Every test starts from one known-feasible baseline specification,
//! applies a single minimal corrupting mutation, and asserts that the
//! expected Error lint — and only errors of that class — fires. Together
//! they prove each infeasibility analysis is *live*: remove any one and
//! its mutation goes undetected.

// Test code: helpers unwrap and cast freely on controlled inputs.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use crusade_lint::{lint, Lint, LintOptions, LintReport, Severity};
use crusade_model::{
    AsicAttrs, CpuAttrs, Dollars, ExecutionTimes, LinkClass, LinkType, Nanos, PeClass, PeType,
    PeTypeId, Preference, ResourceLibrary, SystemSpec, Task, TaskGraph, TaskGraphBuilder, TaskId,
};

const CPU: PeTypeId = PeTypeId::new(0);
const ASIC: PeTypeId = PeTypeId::new(1);
const CPU_MEMORY: u64 = 1 << 20;
const ASIC_GATES: u64 = 10_000;

/// One CPU, one ASIC, one bus: every baseline below is feasible on it.
fn library() -> ResourceLibrary {
    let mut lib = ResourceLibrary::new();
    lib.add_pe(PeType::new(
        "cpu",
        Dollars::new(100),
        PeClass::Cpu(CpuAttrs {
            memory_bytes: CPU_MEMORY,
            context_switch: Nanos::from_micros(1),
            comm_ports: 2,
            comm_overlap: true,
        }),
    ));
    lib.add_pe(PeType::new(
        "asic",
        Dollars::new(200),
        PeClass::Asic(AsicAttrs {
            gates: ASIC_GATES,
            pins: 64,
        }),
    ));
    lib.add_link(LinkType::new(
        "bus",
        Dollars::new(20),
        LinkClass::Bus,
        8,
        vec![Nanos::from_nanos(100)],
        64,
        Nanos::from_micros(1),
    ));
    lib
}

/// A CPU-only task of the given execution time with tiny memory demand.
fn sw_task(name: &str, exec: Nanos) -> Task {
    let mut t = Task::new(name, ExecutionTimes::from_entries(2, [(CPU, exec)]));
    t.memory = crusade_model::MemoryVector::new(1_000, 500, 100);
    t
}

/// The feasible baseline: a three-task software chain well inside its
/// period and deadline.
fn baseline() -> TaskGraph {
    let mut b = TaskGraphBuilder::new("base", Nanos::from_millis(1));
    let mut prev = None;
    for i in 0..3 {
        let id = b.add_task(sw_task(&format!("t{i}"), Nanos::from_micros(10)));
        if let Some(p) = prev {
            b.add_edge(p, id, 64);
        }
        prev = Some(id);
    }
    b.deadline(Nanos::from_micros(800)).build().unwrap()
}

fn run(spec: &SystemSpec) -> LintReport {
    lint(spec, &library(), &LintOptions::default())
}

fn kinds(report: &LintReport, severity: Severity) -> Vec<&'static str> {
    let mut v: Vec<_> = report
        .iter()
        .filter(|l| l.severity() == severity)
        .map(Lint::kind)
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Asserts the mutated spec triggers exactly the one expected Error class.
fn assert_only_error(spec: &SystemSpec, kind: &str) {
    let report = run(spec);
    assert!(report.has_errors(), "expected an `{kind}` error");
    assert_eq!(
        kinds(&report, Severity::Error),
        vec![kind],
        "expected only `{kind}` at Error level"
    );
}

#[test]
fn baseline_is_clean() {
    let report = run(&SystemSpec::new(vec![baseline()]));
    assert!(
        report.is_clean(),
        "baseline must lint clean, got: {:?}",
        report.iter().collect::<Vec<_>>()
    );
}

#[test]
fn invalid_spec_fires_on_hyperperiod_overflow() {
    // Two huge coprime periods whose lcm overflows the u64 nanosecond
    // range; each graph alone is fine.
    let mut a = TaskGraphBuilder::new("a", Nanos::from_nanos(1_000_000_007));
    a.add_task(sw_task("ta", Nanos::from_micros(10)));
    let mut b = TaskGraphBuilder::new("b", Nanos::from_nanos(999_999_999_989));
    b.add_task(sw_task("tb", Nanos::from_micros(10)));
    let spec = SystemSpec::new(vec![a.build().unwrap(), b.build().unwrap()]);
    assert_only_error(&spec, "invalid-spec");
}

#[test]
fn invalid_spec_short_circuits_other_analyses() {
    // The invalid spec also contains a would-be timing error; the lint
    // pass must stop at structural validation rather than analyse
    // unvalidated data.
    let mut a = TaskGraphBuilder::new("a", Nanos::from_nanos(1_000_000_007));
    a.add_task(sw_task("slow", Nanos::from_secs(10)));
    let mut b = TaskGraphBuilder::new("b", Nanos::from_nanos(999_999_999_989));
    b.add_task(sw_task("tb", Nanos::from_micros(10)));
    let spec = SystemSpec::new(vec![a.build().unwrap(), b.build().unwrap()]);
    let report = run(&spec);
    assert_eq!(report.len(), 1);
    assert_eq!(report.iter().next().unwrap().kind(), "invalid-spec");
}

#[test]
fn critical_path_exceeds_deadline_fires() {
    // Tighten the baseline deadline below the 30 µs best-case chain.
    let mut b = TaskGraphBuilder::new("base", Nanos::from_millis(1));
    let mut prev = None;
    for i in 0..3 {
        let id = b.add_task(sw_task(&format!("t{i}"), Nanos::from_micros(10)));
        if let Some(p) = prev {
            b.add_edge(p, id, 64);
        }
        prev = Some(id);
    }
    let g = b.deadline(Nanos::from_micros(15)).build().unwrap();
    assert_only_error(&SystemSpec::new(vec![g]), "critical-path-exceeds-deadline");
}

#[test]
fn task_exceeds_period_fires() {
    // One task slower than the whole period: its periodic copies overlap.
    let mut b = TaskGraphBuilder::new("g", Nanos::from_millis(1));
    b.add_task(sw_task("slow", Nanos::from_millis(2)));
    let g = b.build().unwrap();
    let report = run(&SystemSpec::new(vec![g]));
    assert!(report.has_errors());
    assert!(
        kinds(&report, Severity::Error).contains(&"task-exceeds-period"),
        "expected `task-exceeds-period`, got {:?}",
        kinds(&report, Severity::Error)
    );
}

#[test]
fn no_feasible_pe_fires_on_capacity() {
    // Memory demand above every CPU's capacity, with no hardware mapping:
    // the preference/exec/capacity intersection is empty.
    let mut b = TaskGraphBuilder::new("g", Nanos::from_millis(1));
    let mut t = sw_task("fat", Nanos::from_micros(10));
    t.memory = crusade_model::MemoryVector::new(CPU_MEMORY, 1, 0);
    b.add_task(t);
    let g = b.build().unwrap();
    assert_only_error(&SystemSpec::new(vec![g]), "no-feasible-pe");
}

#[test]
fn self_exclusion_fires() {
    let mut b = TaskGraphBuilder::new("g", Nanos::from_millis(1));
    let mut t = sw_task("selfish", Nanos::from_micros(10));
    t.exclusions.add(TaskId::new(0)); // its own id
    b.add_task(t);
    let g = b.build().unwrap();
    assert_only_error(&SystemSpec::new(vec![g]), "self-exclusion");
}

/// A two-task chain forced across the CPU/ASIC boundary: `head` can only
/// run on the CPU, `tail` only on the ASIC, so the edge can never be
/// internalised onto one PE.
fn forced_inter_pe_chain(bytes: u64) -> TaskGraph {
    let mut b = TaskGraphBuilder::new("g", Nanos::from_millis(1));
    let head = b.add_task(sw_task("head", Nanos::from_micros(10)));
    let mut t = Task::new(
        "tail",
        ExecutionTimes::from_entries(2, [(ASIC, Nanos::from_micros(5))]),
    );
    t.preference = Preference::Only(vec![ASIC]);
    t.hw = crusade_model::HwDemand::new(1_000, 0, 0, 8);
    let tail = b.add_task(t);
    b.add_edge(head, tail, bytes);
    b.build().unwrap()
}

#[test]
fn edge_unroutable_fires_without_links() {
    let mut lib = library();
    let spec = SystemSpec::new(vec![forced_inter_pe_chain(64)]);
    // Sanity: with the bus present the same spec has no routing error.
    assert!(!lint(&spec, &lib, &LintOptions::default()).has_errors());
    lib = {
        // Rebuild the library without any link type.
        let mut no_links = ResourceLibrary::new();
        for (_, pe) in lib.pes() {
            no_links.add_pe(pe.clone());
        }
        no_links
    };
    let report = lint(&spec, &lib, &LintOptions::default());
    assert!(report.has_errors());
    assert_eq!(kinds(&report, Severity::Error), vec!["edge-unroutable"]);
}

#[test]
fn edge_infeasible_fires_on_oversubscribed_link() {
    // 1 MB across a 1 µs-per-64-byte bus needs ~16 ms, far beyond the
    // 1 ms period of the forced inter-PE edge. The same communication
    // lower bound necessarily also sinks the critical path, so only the
    // presence of the routing error is asserted.
    let spec = SystemSpec::new(vec![forced_inter_pe_chain(1 << 20)]);
    let report = run(&spec);
    assert!(report.has_errors());
    assert!(
        kinds(&report, Severity::Error).contains(&"edge-infeasible"),
        "expected `edge-infeasible`, got {:?}",
        kinds(&report, Severity::Error)
    );
}

#[test]
fn every_error_class_has_a_mutation() {
    // Meta-test: the cases above cover exactly the Error-level kinds the
    // diagnostics module defines, so adding a new Error lint without a
    // mutation test fails here.
    let covered = [
        "invalid-spec",
        "critical-path-exceeds-deadline",
        "task-exceeds-period",
        "no-feasible-pe",
        "self-exclusion",
        "edge-unroutable",
        "edge-infeasible",
    ];
    let all_error_kinds = [
        Lint::InvalidSpec {
            message: String::new(),
        },
        Lint::CriticalPathExceedsDeadline {
            graph: crusade_model::GraphId::new(0),
            task: TaskId::new(0),
            best_finish: Nanos::ZERO,
            deadline: Nanos::ZERO,
        },
        Lint::TaskExceedsPeriod {
            graph: crusade_model::GraphId::new(0),
            task: TaskId::new(0),
            best: Nanos::ZERO,
            period: Nanos::ZERO,
        },
        Lint::NoFeasiblePe {
            graph: crusade_model::GraphId::new(0),
            task: TaskId::new(0),
            name: String::new(),
        },
        Lint::SelfExclusion {
            graph: crusade_model::GraphId::new(0),
            task: TaskId::new(0),
        },
        Lint::EdgeUnroutable {
            graph: crusade_model::GraphId::new(0),
            edge: crusade_model::EdgeId::new(0),
        },
        Lint::EdgeInfeasible {
            graph: crusade_model::GraphId::new(0),
            edge: crusade_model::EdgeId::new(0),
            best: Nanos::ZERO,
            period: Nanos::ZERO,
        },
    ];
    for lint in &all_error_kinds {
        assert_eq!(lint.severity(), Severity::Error);
        assert!(
            covered.contains(&lint.kind()),
            "Error lint `{}` has no mutation test",
            lint.kind()
        );
    }
}

/// Generator-driven cases: the same liveness argument, but the baseline
/// is a `crusade-gen` random family instead of the hand-built chain —
/// mutations must be caught on machine-made structure too.
mod generated {
    use super::*;
    use crusade_gen::{generate, GenConfig};
    use crusade_workloads::paper_library;

    /// Rebuilds graph 0 of a generated spec through `mutate`.
    fn mutate_first(
        config: &GenConfig,
        mutate: impl FnOnce(TaskGraphBuilder) -> TaskGraphBuilder,
    ) -> (crusade_model::ResourceLibrary, SystemSpec) {
        let lib = paper_library();
        let generated = generate(&lib, config);
        let mut graphs: Vec<TaskGraph> = generated.spec.graphs().map(|(_, g)| g.clone()).collect();
        let first = graphs.remove(0);
        graphs.insert(0, mutate(first.into_builder()).build().unwrap());
        (lib.lib, SystemSpec::new(graphs))
    }

    #[test]
    fn generated_families_are_clean_baselines() {
        let lib = paper_library();
        for seed in 0..16 {
            let generated = generate(
                &lib,
                &GenConfig {
                    seed,
                    ..GenConfig::default()
                },
            );
            let report = lint(&generated.spec, &lib.lib, &LintOptions::default());
            assert!(
                !report.has_errors(),
                "seed {seed}: generated family has lint errors: {:?}",
                kinds(&report, Severity::Error)
            );
        }
    }

    #[test]
    fn crushed_generated_deadline_fires_critical_path() {
        let config = GenConfig {
            seed: 3,
            utilization: 2.0,
            ..GenConfig::default()
        };
        let (lib, spec) = mutate_first(&config, |b| b.deadline(Nanos::from_nanos(1)));
        let report = lint(&spec, &lib, &LintOptions::default());
        assert!(
            kinds(&report, Severity::Error).contains(&"critical-path-exceeds-deadline"),
            "expected `critical-path-exceeds-deadline`, got {:?}",
            kinds(&report, Severity::Error)
        );
    }

    #[test]
    fn tortoise_task_in_generated_graph_fires_task_exceeds_period() {
        let config = GenConfig {
            seed: 11,
            ..GenConfig::default()
        };
        let paper = paper_library();
        let period = generate(&paper, &config)
            .spec
            .graphs()
            .next()
            .unwrap()
            .1
            .period();
        let (lib, spec) = mutate_first(&config, |mut b| {
            // A software task slower than the whole period on every CPU.
            let exec = ExecutionTimes::from_entries(
                paper.lib.pe_count(),
                paper.cpus.iter().map(|&id| (id, period * 2)),
            );
            let mut t = Task::new("tortoise", exec);
            t.memory = crusade_model::MemoryVector::new(1_000, 500, 100);
            b.add_task(t);
            b
        });
        let report = lint(&spec, &lib, &LintOptions::default());
        assert!(
            kinds(&report, Severity::Error).contains(&"task-exceeds-period"),
            "expected `task-exceeds-period`, got {:?}",
            kinds(&report, Severity::Error)
        );
    }
}
