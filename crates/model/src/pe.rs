//! Processing-element types of the resource library.
//!
//! The PE library consists of general-purpose processors (CPUs),
//! application-specific integrated circuits (ASICs), and programmable PEs
//! (PPEs: FPGAs and CPLDs). Each class carries the attributes Section 2.2
//! of the paper lists — capacity figures for allocation, timing figures for
//! scheduling, and a dollar cost for the objective function.

use serde::{Deserialize, Serialize};

use crate::{Dollars, Nanos};

/// Which family a programmable device belongs to.
///
/// The distinction matters for reconfiguration-controller synthesis: CPLDs
/// are programmed through their boundary-scan test port, while FPGAs offer
/// serial or 8-bit-parallel programming modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PpeKind {
    /// Field-programmable gate array (e.g. XILINX 6200, ATMEL AT6000, ORCA).
    Fpga,
    /// Complex programmable logic device (e.g. XILINX XC9500).
    Cpld,
}

/// Attributes of a general-purpose processor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuAttrs {
    /// Total memory capacity available to tasks, in bytes (the paper
    /// evaluates DRAM banks of up to 64 MB per processor).
    pub memory_bytes: u64,
    /// Context-switch time charged when the scheduler preempts a task.
    pub context_switch: Nanos,
    /// Number of communication ports the processor (or its communication
    /// coprocessor) exposes towards links.
    pub comm_ports: u32,
    /// Whether computation can overlap communication (dedicated
    /// communication processor present).
    pub comm_overlap: bool,
}

/// Attributes of an ASIC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsicAttrs {
    /// Usable gate count.
    pub gates: u64,
    /// Package pin count available for task I/O.
    pub pins: u32,
}

/// Attributes of a programmable PE (FPGA or CPLD).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PpeAttrs {
    /// FPGA or CPLD.
    pub kind: PpeKind,
    /// Number of programmable functional units (CLBs/PFUs).
    pub pfus: u32,
    /// Number of flip-flops.
    pub flip_flops: u32,
    /// Package pin count available for task I/O.
    pub pins: u32,
    /// Boot (configuration) memory required to hold one full configuration
    /// image, in bytes.
    pub boot_memory_bytes: u64,
    /// Configuration stream length per PFU, in bits; total configuration
    /// bits for a full reconfiguration are `pfus * config_bits_per_pfu`.
    pub config_bits_per_pfu: u32,
    /// Whether the device supports *partial* reconfiguration (e.g. XILINX
    /// XC6200, ATMEL AT6000). Partially reconfigurable devices reprogram
    /// only the PFUs that differ between modes.
    pub partial_reconfig: bool,
}

impl PpeAttrs {
    /// Total configuration bits for a full-device reconfiguration.
    pub fn full_config_bits(&self) -> u64 {
        self.pfus as u64 * self.config_bits_per_pfu as u64
    }
}

/// Class-specific attributes of a PE type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PeClass {
    /// General-purpose processor.
    Cpu(CpuAttrs),
    /// Application-specific integrated circuit.
    Asic(AsicAttrs),
    /// Programmable PE (FPGA/CPLD) — the only class that supports dynamic
    /// reconfiguration.
    Ppe(PpeAttrs),
}

/// One entry of the PE library.
///
/// # Examples
///
/// ```
/// use crusade_model::{CpuAttrs, Dollars, Nanos, PeClass, PeType};
///
/// let cpu = PeType::new(
///     "MC68360",
///     Dollars::new(95),
///     PeClass::Cpu(CpuAttrs {
///         memory_bytes: 16 << 20,
///         context_switch: Nanos::from_micros(8),
///         comm_ports: 2,
///         comm_overlap: true,
///     }),
/// );
/// assert!(cpu.is_cpu());
/// assert!(!cpu.is_reconfigurable());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeType {
    name: String,
    cost: Dollars,
    class: PeClass,
}

impl PeType {
    /// Creates a PE type.
    pub fn new(name: impl Into<String>, cost: Dollars, class: PeClass) -> Self {
        PeType {
            name: name.into(),
            cost,
            class,
        }
    }

    /// Human-readable part name (e.g. `"XC4025"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Unit dollar cost of one instance.
    pub fn cost(&self) -> Dollars {
        self.cost
    }

    /// Class-specific attributes.
    pub fn class(&self) -> &PeClass {
        &self.class
    }

    /// `true` for general-purpose processors.
    pub fn is_cpu(&self) -> bool {
        matches!(self.class, PeClass::Cpu(_))
    }

    /// `true` for ASICs.
    pub fn is_asic(&self) -> bool {
        matches!(self.class, PeClass::Asic(_))
    }

    /// `true` for programmable PEs (FPGA/CPLD), i.e. candidates for dynamic
    /// reconfiguration.
    pub fn is_reconfigurable(&self) -> bool {
        matches!(self.class, PeClass::Ppe(_))
    }

    /// The CPU attributes, if this is a CPU.
    pub fn as_cpu(&self) -> Option<&CpuAttrs> {
        match &self.class {
            PeClass::Cpu(a) => Some(a),
            _ => None,
        }
    }

    /// The ASIC attributes, if this is an ASIC.
    pub fn as_asic(&self) -> Option<&AsicAttrs> {
        match &self.class {
            PeClass::Asic(a) => Some(a),
            _ => None,
        }
    }

    /// The programmable-PE attributes, if this is an FPGA/CPLD.
    pub fn as_ppe(&self) -> Option<&PpeAttrs> {
        match &self.class {
            PeClass::Ppe(a) => Some(a),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ppe() -> PeType {
        PeType::new(
            "XC6216",
            Dollars::new(180),
            PeClass::Ppe(PpeAttrs {
                kind: PpeKind::Fpga,
                pfus: 4096,
                flip_flops: 4096,
                pins: 299,
                boot_memory_bytes: 96 * 1024,
                config_bits_per_pfu: 192,
                partial_reconfig: true,
            }),
        )
    }

    #[test]
    fn classification_predicates() {
        let ppe = sample_ppe();
        assert!(ppe.is_reconfigurable());
        assert!(!ppe.is_cpu());
        assert!(!ppe.is_asic());
        assert!(ppe.as_ppe().is_some());
        assert!(ppe.as_cpu().is_none());
        assert_eq!(ppe.name(), "XC6216");
        assert_eq!(ppe.cost(), Dollars::new(180));
    }

    #[test]
    fn full_config_bits_scale_with_pfus() {
        let attrs = sample_ppe().as_ppe().unwrap().clone();
        assert_eq!(attrs.full_config_bits(), 4096 * 192);
    }

    #[test]
    fn asic_attributes_accessible() {
        let asic = PeType::new(
            "sonet-framer",
            Dollars::new(400),
            PeClass::Asic(AsicAttrs {
                gates: 120_000,
                pins: 208,
            }),
        );
        assert!(asic.is_asic());
        assert_eq!(asic.as_asic().unwrap().gates, 120_000);
    }
}
