//! The CRUSADE command-line interface.
//!
//! ```text
//! crusade synth <spec.json> [--no-reconfig]   co-synthesize a JSON specification
//! crusade upgrade <old.json> <new.json>       can the new spec ship as firmware?
//! crusade example <name> [--no-reconfig]      run a built-in paper benchmark
//! crusade sample <path.json>                  write a sample specification file
//! crusade lint <spec.json|name> [--format json]
//!                                             statically analyze a specification
//!                                             without synthesizing it
//! crusade audit <spec.json|name> [--no-reconfig]
//!                                             synthesize, then independently
//!                                             re-verify every claimed invariant
//! crusade inject <spec.json|name> [--seeds N] [--no-reconfig]
//!                                             seeded fault-injection campaign
//!                                             against the synthesized system
//! crusade explore <spec.json|name> [--jobs N] [--portfolio M] [--no-reconfig]
//!                                             parallel multi-start exploration
//!                                             over a portfolio of synthesis
//!                                             policies
//! crusade trace <spec.json|name> [--out trace.jsonl] [--jobs N] [--portfolio M]
//!                                             explore, then replay the winning
//!                                             policy with the structured-event
//!                                             observer attached and emit the
//!                                             JSONL trace
//! crusade resyn <spec.json|name> --deltas deltas.json [--jobs N] [--portfolio M]
//!               [--retry-budget K] [--out report.json]
//!                                             synthesize the system cold, then
//!                                             drive a JSON sequence of spec
//!                                             deltas through the online
//!                                             re-synthesis escalation ladder
//! crusade serve [--addr HOST:PORT] [--workers N]
//!                                             run the synthesis-as-a-service
//!                                             daemon until a Shutdown request
//! crusade client <verb> --addr HOST:PORT     submit / status / cancel / resyn /
//!                                             stats / shutdown against a
//!                                             running daemon
//! ```
//!
//! `synth` and `explore` accept `--metrics`: a metrics accumulator is
//! attached to the run and its JSON snapshot printed after the normal
//! output. The `trace` output is deterministic — byte-identical for any
//! `--jobs` value — because the trace comes from a solo replay of the
//! deterministic winner, never from the racing portfolio members.
//!
//! `lint`, `audit`, `inject` and `explore` accept a specification file,
//! the name of a built-in paper benchmark (`crusade lint vdrtx`), or a
//! generated-family reference (`crusade lint gen:7:2.5` — seed 7 at
//! total utilization 2.5), resolved through one shared loading path.
//! `crusade sweep` runs the schedulability-ratio experiment over those
//! generated families: per utilization point (times an optional
//! secondary axis) it generates N seeded specs and reports how many
//! synthesize to an audit-clean architecture.
//!
//! Exit codes (shared by `lint` and `audit`): **0** — clean; **1** —
//! warnings only (lint); **2** — proved infeasibilities, audit
//! violations, or an operational error.
//!
//! A specification file is a JSON object `{ "library": ..., "spec": ... }`
//! whose two fields are the serde forms of
//! [`crusade::model::ResourceLibrary`] and [`crusade::model::SystemSpec`];
//! `crusade sample` writes a commented starting point.

use std::process::ExitCode;

use crusade::core::{describe, upgrade_in_field, CoSynthesis, CosynOptions};
use crusade::lint::Severity;
use crusade::model::{ResourceLibrary, SystemSpec};
use crusade::workloads::{paper_examples, paper_library};
use serde::{Deserialize, Serialize};

/// Process exit code for a fully clean run.
const EXIT_CLEAN: u8 = 0;
/// Exit code when a check produced warnings but no proved failure.
const EXIT_WARNINGS: u8 = 1;
/// Exit code for proved infeasibilities, audit violations, or
/// operational errors (bad arguments, unreadable files).
const EXIT_ERRORS: u8 = 2;

const USAGE: &str = "usage: crusade <command> ...

commands:
  synth <spec.json> [--no-reconfig] [--metrics]
                                               co-synthesize a specification
  upgrade <old.json> <new.json>                can the new spec ship as firmware?
  example <name> [--no-reconfig]               run a built-in paper benchmark
  sample <path.json>                           write a sample specification file
  lint <spec.json|name> [--format json]        static analysis, no synthesis
  audit <spec.json|name> [--no-reconfig]       synthesize + independent re-verify
  inject <spec.json|name> [--seeds N] [--no-reconfig]
                                               seeded fault-injection campaign
  sweep [--points U1,U2,...] [--seeds N] [--seed S] [--graphs G] [--tightness T]
        [--hw-share H] [--comm-density D] [--secondary none|tightness|hw-share]
        [--secondary-points V1,V2,...] [--out sweep.json] [--no-audit] [--no-reconfig]
                                               schedulability-ratio sweep over
                                               generated workload families:
                                               acceptance ratio and mean cost
                                               per utilization point
  explore <spec.json|name> [--jobs N] [--portfolio M] [--no-reconfig] [--metrics]
                                               parallel multi-start exploration
  trace <spec.json|name> [--out trace.jsonl] [--jobs N] [--portfolio M] [--no-reconfig]
                                               explore, then replay the winner
                                               with the event observer attached
                                               and emit the JSONL trace
  resyn <spec.json|name> --deltas <deltas.json> [--jobs N] [--portfolio M]
        [--retry-budget K] [--from-rung R] [--out report.json] [--no-reconfig]
                                               online re-synthesis: apply a JSON
                                               sequence of spec deltas to the
                                               deployed system via warm-start
                                               repair with graceful degradation
                                               (--from-rung warm|widened|portfolio|cold
                                               skips the cheaper rungs — a forced
                                               restart)
  serve [--addr HOST:PORT] [--workers N] [--jobs N] [--queue-cap N] [--quota N]
        [--port-file path]                     synthesis-as-a-service daemon:
                                               newline-delimited JSON over TCP,
                                               spec-fingerprint result cache,
                                               graceful drain via a Shutdown
                                               request (exit 0)
  client <submit|status|cancel|resyn|stats|shutdown> --addr HOST:PORT ...
                                               talk to a running daemon (see
                                               `crusade client` for verb usage)

exit codes (lint, audit):
  0  clean — no findings (informational bounds do not count)
  1  warnings only — synthesis may still succeed
  2  errors — proved infeasibility / audit violation / operational error

exit codes (resyn):
  0  every delta admitted and repaired on a warm rung (in-place/warm/widened)
  1  repaired, but at least one delta degraded to a portfolio or cold restart
  2  a delta was rejected, invalid, or infeasible even for cold synthesis";

#[derive(Serialize, Deserialize)]
struct SpecFile {
    library: ResourceLibrary,
    spec: SystemSpec,
}

fn load(path: &str) -> Result<SpecFile, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn options(args: &[String]) -> CosynOptions {
    if args.iter().any(|a| a == "--no-reconfig") {
        CosynOptions::without_reconfiguration()
    } else {
        CosynOptions::default()
    }
}

fn cmd_synth(args: &[String]) -> Result<u8, String> {
    let path = args.first().ok_or("usage: crusade synth <spec.json>")?;
    let file = load(path)?;
    let mut opts = options(args);
    let metrics = args.iter().any(|a| a == "--metrics").then(|| {
        let metrics = std::sync::Arc::new(crusade::obs::Metrics::new());
        opts = opts.clone().with_observer(metrics.clone());
        metrics
    });
    let result = CoSynthesis::new(&file.spec, &file.library)
        .with_options(opts)
        .run()
        .map_err(|e| e.to_string())?;
    print!("{}", describe(&result, &file.spec, &file.library));
    if let Some(metrics) = metrics {
        println!(
            "{}",
            serde_json::to_string_pretty(&metrics.snapshot()).map_err(|e| e.to_string())?
        );
    }
    Ok(EXIT_CLEAN)
}

fn cmd_upgrade(args: &[String]) -> Result<u8, String> {
    let (old_path, new_path) = match args {
        [a, b, ..] => (a, b),
        _ => return Err("usage: crusade upgrade <old.json> <new.json>".into()),
    };
    let old = load(old_path)?;
    let new = load(new_path)?;
    let deployed = CoSynthesis::new(&old.spec, &old.library)
        .run()
        .map_err(|e| format!("synthesizing the deployed system: {e}"))?;
    println!(
        "deployed: {} PEs, {} links, {}",
        deployed.report.pe_count, deployed.report.link_count, deployed.report.cost
    );
    match upgrade_in_field(
        &deployed.architecture,
        &new.spec,
        &new.library,
        &CosynOptions::default(),
    ) {
        Ok(up) => {
            println!(
                "upgrade: ships as firmware — {} new configuration image(s), hardware unchanged",
                up.extra_modes
            );
            Ok(EXIT_CLEAN)
        }
        Err(e) => {
            println!("upgrade: requires new hardware ({e})");
            Ok(EXIT_CLEAN)
        }
    }
}

fn cmd_example(args: &[String]) -> Result<u8, String> {
    let name = args.first().ok_or("usage: crusade example <name>")?;
    let lib = paper_library();
    let ex = paper_examples()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            format!(
                "unknown example {name}; available: {}",
                paper_examples()
                    .iter()
                    .map(|e| e.name)
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })?;
    let spec = ex.build(&lib);
    let result = CoSynthesis::new(&spec, &lib.lib)
        .with_options(options(args))
        .run()
        .map_err(|e| e.to_string())?;
    println!(
        "{}: {} tasks -> {} PEs, {} links, {} ({} multi-mode devices; {:?})",
        ex.name,
        spec.task_count(),
        result.report.pe_count,
        result.report.link_count,
        result.report.cost,
        result.report.multi_mode_devices,
        result.report.cpu_time,
    );
    Ok(EXIT_CLEAN)
}

fn cmd_sample(args: &[String]) -> Result<u8, String> {
    use crusade::model::{
        CpuAttrs, Dollars, ExecutionTimes, HwDemand, LinkClass, LinkType, Nanos, PeClass, PeType,
        PpeAttrs, PpeKind, Preference, Task, TaskGraphBuilder,
    };
    let path = args.first().ok_or("usage: crusade sample <path.json>")?;
    let mut library = ResourceLibrary::new();
    let cpu = library.add_pe(PeType::new(
        "cpu",
        Dollars::new(95),
        PeClass::Cpu(CpuAttrs {
            memory_bytes: 4 << 20,
            context_switch: Nanos::from_micros(8),
            comm_ports: 2,
            comm_overlap: true,
        }),
    ));
    let fpga = library.add_pe(PeType::new(
        "fpga",
        Dollars::new(250),
        PeClass::Ppe(PpeAttrs {
            kind: PpeKind::Fpga,
            pfus: 1000,
            flip_flops: 2000,
            pins: 160,
            boot_memory_bytes: 20 << 10,
            config_bits_per_pfu: 150,
            partial_reconfig: false,
        }),
    ));
    library.add_link(LinkType::new(
        "bus",
        Dollars::new(12),
        LinkClass::Bus,
        8,
        vec![Nanos::from_nanos(300)],
        64,
        Nanos::from_micros(1),
    ));
    let mut b = TaskGraphBuilder::new("sample-pipeline", Nanos::from_millis(1));
    let parse = b.add_task(Task::new(
        "parse",
        ExecutionTimes::from_entries(2, [(cpu, Nanos::from_micros(60))]),
    ));
    let mut filter = Task::new(
        "filter",
        ExecutionTimes::from_entries(2, [(fpga, Nanos::from_micros(12))]),
    );
    filter.preference = Preference::Only(vec![fpga]);
    filter.hw = HwDemand::new(0, 220, 220, 12);
    let filter = b.add_task(filter);
    let log = b.add_task(Task::new(
        "log",
        ExecutionTimes::from_entries(2, [(cpu, Nanos::from_micros(40))]),
    ));
    b.add_edge(parse, filter, 512);
    b.add_edge(filter, log, 128);
    let spec = SystemSpec::new(vec![b
        .deadline(Nanos::from_micros(800))
        .build()
        .map_err(|e| e.to_string())?]);
    let file = SpecFile { library, spec };
    let json = serde_json::to_string_pretty(&file).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
    println!("wrote sample specification to {path}");
    Ok(EXIT_CLEAN)
}

/// Resolves a spec argument: the name of a built-in benchmark, a
/// generated-family reference (`gen:SEED[:UTIL[:GRAPHS[:TIGHTNESS]]]`),
/// or a specification file. The single loading path every analysis
/// command shares.
fn load_or_example(arg: &str) -> Result<(ResourceLibrary, SystemSpec), String> {
    if let Some(parsed) = crusade::gen::GenConfig::from_ref(arg) {
        return Ok(crusade::gen::generate_payload(&parsed?));
    }
    if let Some(ex) = paper_examples()
        .into_iter()
        .find(|e| e.name.eq_ignore_ascii_case(arg))
    {
        let lib = paper_library();
        let spec = ex.build(&lib);
        return Ok((lib.lib, spec));
    }
    let file = load(arg)?;
    Ok((file.library, file.spec))
}

/// Statically analyzes a specification without synthesizing it.
///
/// Prints each diagnostic (most severe first) and exits 0 when clean,
/// 1 when only warnings were found, 2 when an infeasibility was proved.
fn cmd_lint(args: &[String]) -> Result<u8, String> {
    let arg = args
        .first()
        .ok_or("usage: crusade lint <spec.json|example-name> [--format json]")?;
    let json = match args.iter().position(|a| a == "--format") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("json") => true,
            Some("text") | None => false,
            Some(other) => return Err(format!("--format: unknown format {other}")),
        },
        None => false,
    };
    let (library, spec) = load_or_example(arg)?;
    let report = crusade::lint::lint(&spec, &library, &crusade::lint::LintOptions::default());
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
    } else {
        let mut lints: Vec<_> = report.iter().collect();
        lints.sort_by_key(|l| std::cmp::Reverse(l.severity()));
        for l in lints {
            println!("{}[{}]: {l}", l.severity(), l.kind());
        }
        println!(
            "lint: {} error(s), {} warning(s), {} info",
            report.count(Severity::Error),
            report.count(Severity::Warning),
            report.count(Severity::Info),
        );
    }
    Ok(if report.has_errors() {
        EXIT_ERRORS
    } else if report.is_clean() {
        EXIT_CLEAN
    } else {
        EXIT_WARNINGS
    })
}

fn cmd_audit(args: &[String]) -> Result<u8, String> {
    let arg = args
        .first()
        .ok_or("usage: crusade audit <spec.json|example-name> [--no-reconfig]")?;
    let (library, spec) = load_or_example(arg)?;
    let options = options(args);
    let result = CoSynthesis::new(&spec, &library)
        .with_options(options.clone())
        .run()
        .map_err(|e| e.to_string())?;
    let violations = crusade::verify::audit(&spec, &library, &options, &result);
    println!(
        "synthesized: {} PEs, {} links, {}",
        result.report.pe_count, result.report.link_count, result.report.cost
    );
    if violations.is_empty() {
        println!("audit: clean — every re-derived invariant holds");
        Ok(EXIT_CLEAN)
    } else {
        for v in &violations {
            println!("audit: [{}] {v}", v.kind());
        }
        // Violations are findings, not operational errors: report them on
        // stdout like `lint` does and exit 2 through the shared convention
        // rather than through the `error:` path.
        println!(
            "audit: {} violation(s) — architecture rejected",
            violations.len()
        );
        Ok(EXIT_ERRORS)
    }
}

/// Parses an optional `--name <usize>` flag.
fn flag_usize(args: &[String], name: &str) -> Result<Option<usize>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .ok_or(format!("{name} needs a value"))?
            .parse::<usize>()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
        None => Ok(None),
    }
}

/// Runs the parallel multi-start exploration engine over a portfolio of
/// synthesis policies and prints the cheapest audit-clean winner.
///
/// The winner line on stdout is deterministic — bit-identical regardless
/// of `--jobs`. Schedule-dependent statistics (cache hit-rate, pruning
/// counts) go to stderr.
fn cmd_explore(args: &[String]) -> Result<u8, String> {
    let arg = args
        .first()
        .ok_or("usage: crusade explore <spec.json|example-name> [--jobs N] [--portfolio M]")?;
    let jobs = match flag_usize(args, "--jobs")? {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    let portfolio = flag_usize(args, "--portfolio")?.unwrap_or(8).max(1);
    let (library, spec) = load_or_example(arg)?;
    let mut base = options(args);
    let metrics = args.iter().any(|a| a == "--metrics").then(|| {
        let metrics = std::sync::Arc::new(crusade::obs::Metrics::new());
        base = base.clone().with_observer(metrics.clone());
        metrics
    });
    let config = crusade::explore::ExploreConfig::new(portfolio, jobs).with_base(base);
    let outcome = crusade::explore::explore(&spec, &library, &config).map_err(|e| e.to_string())?;
    println!(
        "explore: winner policy #{} -> {} PEs, {} links, {} ({} multi-mode devices)",
        outcome.policy.id,
        outcome.winner.report.pe_count,
        outcome.winner.report.link_count,
        outcome.winner.report.cost,
        outcome.winner.report.multi_mode_devices,
    );
    let stats = &outcome.stats;
    eprintln!(
        "explore: portfolio {} at {} job(s) — {} clean, {} dominated, {} skipped by bound, \
         {} audit-rejected, {} failed; cache {:.0}% hit ({} / {} lookups); lower bound {}",
        stats.portfolio,
        stats.jobs,
        stats.clean,
        stats.dominated,
        stats.skipped_by_bound,
        stats.audit_rejected,
        stats.failed,
        stats.cache_hit_rate() * 100.0,
        stats.cache_hits,
        stats.cache_lookups,
        stats.cost_lower_bound,
    );
    if let Some(metrics) = metrics {
        // Aggregated over every portfolio member: schedule-dependent, so
        // it goes to stdout only on explicit request.
        println!(
            "{}",
            serde_json::to_string_pretty(&metrics.snapshot()).map_err(|e| e.to_string())?
        );
    }
    Ok(EXIT_CLEAN)
}

/// Parses an optional `--name <f64>` flag.
fn flag_f64(args: &[String], name: &str) -> Result<Option<f64>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .ok_or(format!("{name} needs a value"))?
            .parse::<f64>()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
        None => Ok(None),
    }
}

/// Parses an optional `--name <u64>` flag.
fn flag_u64(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .ok_or(format!("{name} needs a value"))?
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
        None => Ok(None),
    }
}

/// Parses an optional `--name a,b,c` comma-separated float list.
fn flag_f64_list(args: &[String], name: &str) -> Result<Option<Vec<f64>>, String> {
    match flag_str(args, name)? {
        None => Ok(None),
        Some(text) => text
            .split(',')
            .map(|t| {
                t.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("{name}: {t:?}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Some),
    }
}

/// Parses an optional `--name <string>` flag.
fn flag_str<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        Some(i) => args
            .get(i + 1)
            .map(|s| Some(s.as_str()))
            .ok_or(format!("{name} needs a value")),
        None => Ok(None),
    }
}

/// Explores, then replays the winning policy solo with a trace + metrics
/// observer attached, and emits the replay's JSONL trace.
///
/// The trace is deterministic: byte-identical for any `--jobs` value,
/// because the racing portfolio members are never traced — only the solo
/// replay of the deterministic winner is.
fn cmd_trace(args: &[String]) -> Result<u8, String> {
    let arg = args.first().ok_or(
        "usage: crusade trace <spec.json|example-name> [--out trace.jsonl] [--jobs N] \
         [--portfolio M] [--no-reconfig]",
    )?;
    let jobs = match flag_usize(args, "--jobs")? {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    let portfolio = flag_usize(args, "--portfolio")?.unwrap_or(8).max(1);
    let out = flag_str(args, "--out")?;
    let (library, spec) = load_or_example(arg)?;
    let config = crusade::explore::ExploreConfig::new(portfolio, jobs).with_base(options(args));
    let traced =
        crusade::explore::explore_traced(&spec, &library, &config).map_err(|e| e.to_string())?;
    let records = traced.trace_jsonl.lines().count();
    match out {
        Some(path) => {
            std::fs::write(path, &traced.trace_jsonl)
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("trace: {records} record(s) -> {path}");
        }
        None => print!("{}", traced.trace_jsonl),
    }
    let m = &traced.metrics;
    eprintln!(
        "trace: winner policy #{} -> {} ({} attempts, {} rejected, {} placements, {} span pairs)",
        traced.outcome.policy.id,
        traced.outcome.winner.report.cost,
        m.attempts,
        m.rejected,
        m.placements,
        m.events_by_kind.get("SpanOpen").copied().unwrap_or(0),
    );
    Ok(EXIT_CLEAN)
}

fn cmd_inject(args: &[String]) -> Result<u8, String> {
    let arg = args
        .first()
        .ok_or("usage: crusade inject <spec.json|example-name> [--seeds N] [--no-reconfig]")?;
    let seeds = match args.iter().position(|a| a == "--seeds") {
        Some(i) => args
            .get(i + 1)
            .ok_or("--seeds needs a value")?
            .parse::<u64>()
            .map_err(|e| format!("--seeds: {e}"))?,
        None => 25,
    };
    let (library, spec) = load_or_example(arg)?;
    let options = options(args);
    let deployed = CoSynthesis::new(&spec, &library)
        .with_options(options.clone())
        .run()
        .map_err(|e| e.to_string())?;
    println!(
        "deployed: {} PEs, {} links, {}",
        deployed.report.pe_count, deployed.report.link_count, deployed.report.cost
    );
    let (mut survived, mut degraded, mut failed, mut dirty) = (0u64, 0u64, 0u64, 0u64);
    for seed in 0..seeds {
        let report = crusade::verify::inject(&spec, &library, &options, &deployed, seed);
        use crusade::verify::Outcome;
        let verdict = match &report.outcome {
            Outcome::Survived => {
                survived += 1;
                "survived".to_string()
            }
            Outcome::Degraded {
                added_cost,
                retries,
            } => {
                degraded += 1;
                format!("degraded (+{added_cost}, {retries} retries)")
            }
            Outcome::FailedGracefully(e) => {
                failed += 1;
                format!("failed gracefully: {e}")
            }
            Outcome::AuditDirty(v) => {
                dirty += 1;
                format!("AUDIT DIRTY ({} violations)", v.len())
            }
        };
        println!("seed {seed:>3}  {:<45} -> {verdict}", report.scenario);
    }
    println!(
        "campaign: {seeds} scenarios — {survived} survived, {degraded} degraded, \
         {failed} failed gracefully, {dirty} audit-dirty"
    );
    if dirty > 0 {
        Err(format!("{dirty} scenario(s) produced an invalid repair"))
    } else {
        Ok(EXIT_CLEAN)
    }
}

/// Schedulability-ratio sweep over generated workload families: for
/// each utilization point (and optional secondary-axis value), generate
/// N seeded specs, run lint → synthesis → audit on each, and report the
/// acceptance ratio and mean architecture cost.
///
/// Exit codes: **0** — sweep completed with no audit-dirty run; **2** —
/// at least one synthesized architecture failed the independent audit,
/// or an operational error.
fn cmd_sweep(args: &[String]) -> Result<u8, String> {
    use crusade::gen::{GenConfig, SecondaryAxis, SweepArtifact, SweepConfig};
    let mut base = GenConfig::default();
    if let Some(seed) = flag_u64(args, "--seed")? {
        base.seed = seed;
    }
    if let Some(graphs) = flag_usize(args, "--graphs")? {
        base.graphs = graphs;
    }
    if let Some(tightness) = flag_f64(args, "--tightness")? {
        base.tightness = tightness;
    }
    if let Some(hw_share) = flag_f64(args, "--hw-share")? {
        base.hw_share = hw_share;
    }
    if let Some(density) = flag_f64(args, "--comm-density")? {
        base.comm_density = density;
    }
    let secondary_points = flag_f64_list(args, "--secondary-points")?;
    let secondary = match flag_str(args, "--secondary")? {
        None | Some("none") => SecondaryAxis::None,
        Some("tightness") => {
            SecondaryAxis::Tightness(secondary_points.unwrap_or(vec![0.15, 0.45, 0.75]))
        }
        Some("hw-share") => SecondaryAxis::HwShare(secondary_points.unwrap_or(vec![0.0, 0.3, 0.6])),
        Some(other) => {
            return Err(format!(
                "--secondary: unknown axis {other} (none|tightness|hw-share)"
            ))
        }
    };
    let config = SweepConfig {
        base,
        utilizations: flag_f64_list(args, "--points")?.unwrap_or(vec![0.8, 1.6, 2.4, 3.2, 4.0]),
        secondary,
        seeds: flag_u64(args, "--seeds")?.unwrap_or(5).max(1),
        options: options(args),
        audit: !args.iter().any(|a| a == "--no-audit"),
    };
    let lib = paper_library();
    let points = crusade::gen::run_sweep(&lib, &config, |p| {
        let secondary = p
            .secondary
            .map_or(String::new(), |v| format!(" {}={v:.2}", p.secondary_axis));
        println!(
            "sweep: u={:.2}{secondary}  {}/{} accepted ({} lint-rejected, {} infeasible, \
             {} audit-dirty){}",
            p.utilization,
            p.accepted,
            p.seeds,
            p.lint_rejected,
            p.infeasible,
            p.audit_dirty,
            p.mean_cost
                .map_or(String::new(), |c| format!(", mean cost ${c:.0}")),
        );
    });
    let dirty: u64 = points.iter().map(|p| p.audit_dirty).sum();
    let artifact = SweepArtifact::new(&config, points);
    println!(
        "sweep: {} point(s) x {} seed(s) — overall acceptance {:.0}%",
        artifact.points.len(),
        artifact.seeds_per_point,
        100.0 * artifact.points.iter().map(|p| p.accepted).sum::<u64>() as f64
            / (artifact.points.iter().map(|p| p.seeds).sum::<u64>().max(1) as f64),
    );
    if let Some(path) = flag_str(args, "--out")? {
        let json = serde_json::to_string_pretty(&artifact).map_err(|e| e.to_string())?;
        std::fs::write(path, json + "\n").map_err(|e| format!("writing {path}: {e}"))?;
        println!("sweep: artifact -> {path}");
    }
    if dirty > 0 {
        println!("sweep: {dirty} audit-dirty run(s) — architectures rejected");
        Ok(EXIT_ERRORS)
    } else {
        Ok(EXIT_CLEAN)
    }
}

/// Online re-synthesis: cold-synthesizes the incumbent, then drives a
/// JSON sequence of spec deltas through the escalation ladder.
///
/// Exit codes: **0** — every delta served by a warm rung (in-place, warm
/// or widened); **1** — repaired, but at least one delta degraded to a
/// portfolio or cold restart; **2** — a delta was rejected by admission,
/// malformed, an invalid fault, or infeasible even cold.
fn cmd_resyn(args: &[String]) -> Result<u8, String> {
    let arg = args.first().ok_or(
        "usage: crusade resyn <spec.json|example-name> --deltas <deltas.json> [--jobs N] \
         [--portfolio M] [--retry-budget K] [--out report.json] [--no-reconfig]",
    )?;
    let deltas_path = flag_str(args, "--deltas")?.ok_or("resyn needs --deltas <deltas.json>")?;
    let jobs = match flag_usize(args, "--jobs")? {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, usize::from),
    };
    let portfolio = flag_usize(args, "--portfolio")?.unwrap_or(4).max(1);
    let retry_budget = flag_usize(args, "--retry-budget")?.unwrap_or(8);
    let start = match flag_str(args, "--from-rung")? {
        Some(tag) => crusade::explore::Rung::parse(tag).ok_or(format!(
            "--from-rung: unknown rung {tag} (warm|widened|portfolio|cold)"
        ))?,
        None => crusade::explore::Rung::Warm,
    };
    let out = flag_str(args, "--out")?;
    let (library, spec) = load_or_example(arg)?;
    let text =
        std::fs::read_to_string(deltas_path).map_err(|e| format!("reading {deltas_path}: {e}"))?;
    let deltas: Vec<crusade::model::SpecDelta> =
        serde_json::from_str(&text).map_err(|e| format!("parsing {deltas_path}: {e}"))?;

    crusade::verify::install_auditor();
    let base = options(args);
    let incumbent = CoSynthesis::new(&spec, &library)
        .with_options(base.clone())
        .run()
        .map_err(|e| format!("cold-synthesizing the incumbent: {e}"))?;
    println!(
        "deployed: {} PEs, {} links, {}",
        incumbent.report.pe_count, incumbent.report.link_count, incumbent.report.cost
    );

    let config = crusade::explore::ResynConfig {
        jobs,
        portfolio,
        retry_budget,
        start,
        base,
    };
    match crusade::explore::resynthesize_sequence(&spec, &library, incumbent, &deltas, &config) {
        Ok(outcome) => {
            for step in &outcome.report.steps {
                println!(
                    "delta {:>3}  {:<18} -> {:<9} (moved {}, +${}, cost ${}, {} retries)",
                    step.index,
                    step.kind,
                    step.rung.tag(),
                    step.moved_clusters,
                    step.added_cost,
                    step.cost,
                    step.retries,
                );
                for trigger in &step.triggers {
                    println!("            escalated: {trigger}");
                }
            }
            let histogram: Vec<String> = outcome
                .report
                .rung_histogram()
                .into_iter()
                .map(|(tag, n)| format!("{tag} {n}"))
                .collect();
            println!(
                "resyn: {} delta(s), final cost ${} — rungs: {}",
                outcome.report.steps.len(),
                outcome.report.final_cost,
                histogram.join(", "),
            );
            if let Some(path) = out {
                let json =
                    serde_json::to_string_pretty(&outcome.report).map_err(|e| e.to_string())?;
                std::fs::write(path, json).map_err(|e| format!("writing {path}: {e}"))?;
                println!("resyn: report -> {path}");
            }
            if outcome.report.degraded {
                println!("resyn: degraded — at least one delta needed a restart rung");
                Ok(EXIT_WARNINGS)
            } else {
                Ok(EXIT_CLEAN)
            }
        }
        // Ladder errors are findings about the delta sequence, not
        // operational errors: report them on stdout like `audit` does and
        // exit 2 through the shared convention.
        Err(e) => {
            println!("resyn: {e}");
            Ok(EXIT_ERRORS)
        }
    }
}

/// Runs the synthesis-as-a-service daemon until a `Shutdown` request
/// drains it. Signal-free by design: the drain is part of the protocol,
/// so a clean exit is always exit code 0.
fn cmd_serve(args: &[String]) -> Result<u8, String> {
    let addr = flag_str(args, "--addr")?
        .unwrap_or("127.0.0.1:0")
        .to_string();
    let workers = flag_usize(args, "--workers")?.unwrap_or(2).max(1);
    let jobs = flag_usize(args, "--jobs")?.unwrap_or(1).max(1);
    let queue_cap = flag_usize(args, "--queue-cap")?.unwrap_or(64).max(1);
    let quota = flag_usize(args, "--quota")?.unwrap_or(8).max(1);
    let port_file = flag_str(args, "--port-file")?.map(str::to_string);
    let config = crusade::serve::ServeConfig {
        addr,
        workers,
        jobs_per_explore: jobs,
        queue_cap,
        client_quota: quota,
        ..crusade::serve::ServeConfig::default()
    };
    let report = crusade::serve::serve(config, |addr| {
        println!("serve: listening on {addr} ({workers} workers)");
        if let Some(path) = &port_file {
            if let Err(e) = std::fs::write(path, addr.to_string()) {
                eprintln!("serve: writing {path}: {e}");
            }
        }
    })
    .map_err(|e| e.to_string())?;
    println!(
        "serve: drained — {} running job(s) finished, {} queued job(s) cancelled",
        report.drained, report.cancelled
    );
    Ok(EXIT_CLEAN)
}

/// Builds the wire payload a client sends: the same shape a spec file
/// holds, resolved locally so the server needs no benchmark knowledge.
fn client_payload(arg: &str) -> Result<crusade::serve::SpecPayload, String> {
    let (library, spec) = load_or_example(arg)?;
    Ok(crusade::serve::SpecPayload { library, spec })
}

/// Talks to a running daemon: submit, status, cancel, resyn, stats,
/// shutdown.
///
/// Exit codes: **0** — success (for `resyn`, every delta on a warm
/// rung); **1** — `resyn` succeeded but degraded to a restart rung;
/// **2** — refused or failed (admission, infeasibility, transport).
fn cmd_client(args: &[String]) -> Result<u8, String> {
    const CLIENT_USAGE: &str = "usage: crusade client <verb> --addr HOST:PORT ...\n\
         verbs:\n  submit <spec.json|example-name> [--portfolio M] [--no-reconfig] [--stream] [--name ID]\n\
         \x20 status <job-id>\n  cancel <job-id>\n\
         \x20 resyn <spec.json|example-name> --deltas <deltas.json> [--portfolio M] [--no-reconfig] [--name ID]\n\
         \x20 stats\n  shutdown";
    let (verb, rest) = args.split_first().ok_or(CLIENT_USAGE)?;
    let addr = flag_str(args, "--addr")?.ok_or("client needs --addr HOST:PORT")?;
    let name = flag_str(args, "--name")?.unwrap_or("cli");
    let client = crusade::serve::ServeClient::new(addr, name);
    match verb.as_str() {
        "submit" => {
            let arg = rest.first().ok_or(CLIENT_USAGE)?;
            let payload = client_payload(arg)?;
            let portfolio = flag_usize(args, "--portfolio")?.unwrap_or(8).max(1);
            let reconfiguration = !args.iter().any(|a| a == "--no-reconfig");
            let stream = args.iter().any(|a| a == "--stream");
            let result = client
                .submit(payload, portfolio, reconfiguration, stream, |event| {
                    eprintln!("event {}: {}", event.seq, event.event.kind());
                })
                .map_err(|e| e.to_string())?;
            println!(
                "client: job #{} -> {} PEs, {} links, ${} (policy #{}, fingerprint {}{}{})",
                result.job,
                result.pes,
                result.links,
                result.cost,
                result.policy,
                result.fingerprint,
                if result.cached { ", cached" } else { "" },
                if result.coalesced { ", coalesced" } else { "" },
            );
            Ok(EXIT_CLEAN)
        }
        "status" => {
            let id: u64 = rest
                .first()
                .ok_or(CLIENT_USAGE)?
                .parse()
                .map_err(|e| format!("job id: {e}"))?;
            let status = client.status(id).map_err(|e| e.to_string())?;
            println!(
                "client: job #{} is {}{}",
                status.job,
                status.state,
                if status.detail.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", status.detail)
                }
            );
            Ok(EXIT_CLEAN)
        }
        "cancel" => {
            let id: u64 = rest
                .first()
                .ok_or(CLIENT_USAGE)?
                .parse()
                .map_err(|e| format!("job id: {e}"))?;
            let status = client.cancel(id).map_err(|e| e.to_string())?;
            println!("client: job #{} is {}", status.job, status.state);
            Ok(EXIT_CLEAN)
        }
        "resyn" => {
            let arg = rest.first().ok_or(CLIENT_USAGE)?;
            let payload = client_payload(arg)?;
            let deltas_path =
                flag_str(args, "--deltas")?.ok_or("client resyn needs --deltas <deltas.json>")?;
            let text = std::fs::read_to_string(deltas_path)
                .map_err(|e| format!("reading {deltas_path}: {e}"))?;
            let deltas: Vec<crusade::model::SpecDelta> =
                serde_json::from_str(&text).map_err(|e| format!("parsing {deltas_path}: {e}"))?;
            let portfolio = flag_usize(args, "--portfolio")?.unwrap_or(4).max(1);
            let reconfiguration = !args.iter().any(|a| a == "--no-reconfig");
            let result = client
                .resyn(payload, deltas, portfolio, reconfiguration)
                .map_err(|e| e.to_string())?;
            for step in &result.steps {
                println!(
                    "delta {:>3}  {:<18} -> {:<9} (cost ${})",
                    step.index, step.kind, step.rung, step.cost
                );
            }
            println!(
                "client: resyn job #{} — incumbent ${}{}, final ${}{}",
                result.job,
                result.incumbent_cost,
                if result.incumbent_cached {
                    " (cached)"
                } else {
                    " (cold)"
                },
                result.final_cost,
                if result.degraded { ", degraded" } else { "" },
            );
            Ok(if result.degraded {
                EXIT_WARNINGS
            } else {
                EXIT_CLEAN
            })
        }
        "stats" => {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!(
                "client: {} submitted, {} completed, {} cancelled, {} failed; cache {} hit(s) / \
                 {} miss(es), {} coalesced; {} rejected; queue {} deep, {} running{}",
                stats.submitted,
                stats.completed,
                stats.cancelled,
                stats.failed,
                stats.cache_hits,
                stats.cache_misses,
                stats.coalesced,
                stats.rejected,
                stats.queue_len,
                stats.running,
                if stats.draining { ", draining" } else { "" },
            );
            Ok(EXIT_CLEAN)
        }
        "shutdown" => {
            let report = client.shutdown().map_err(|e| e.to_string())?;
            println!(
                "client: server drained — {} finished, {} cancelled",
                report.drained, report.cancelled
            );
            Ok(EXIT_CLEAN)
        }
        other => Err(format!("unknown client verb {other}\n{CLIENT_USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::from(EXIT_CLEAN);
    }
    let result = match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "synth" => cmd_synth(rest),
            "upgrade" => cmd_upgrade(rest),
            "example" => cmd_example(rest),
            "sample" => cmd_sample(rest),
            "lint" => cmd_lint(rest),
            "audit" => cmd_audit(rest),
            "inject" => cmd_inject(rest),
            "sweep" => cmd_sweep(rest),
            "explore" => cmd_explore(rest),
            "trace" => cmd_trace(rest),
            "resyn" => cmd_resyn(rest),
            "serve" => cmd_serve(rest),
            "client" => cmd_client(rest),
            "help" => {
                println!("{USAGE}");
                Ok(EXIT_CLEAN)
            }
            other => Err(format!("unknown command {other}\n{USAGE}")),
        },
        None => Err(USAGE.into()),
    };
    match result {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_ERRORS)
        }
    }
}
