//! Properties tying the linter to synthesis: Error lints are necessary-
//! condition violations (synthesis of an Error-linted spec must fail, and
//! the `lint` pre-pass rejects it up front), lint-clean specs that
//! synthesize also audit clean, and the allocation pruning oracle never
//! changes the synthesized architecture.

// Test code: helpers unwrap and cast freely on controlled inputs.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use crusade::core::{CoSynthesis, CosynOptions, SynthesisError};
use crusade::lint::{lint, LintOptions};
use crusade::model::{ExecutionTimes, Nanos, SystemSpec, Task, TaskGraphBuilder};
use crusade::verify::audit;
use crusade::workloads::{paper_library, random_example};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Soundness both ways: an Error lint proves synthesis must fail; a
    /// lint-clean spec that synthesizes must also audit clean — the lint's
    /// necessary conditions and the auditor's sufficient evidence never
    /// disagree about one specification.
    #[test]
    fn lint_verdicts_agree_with_synthesis(seed in 0u64..1_000_000) {
        let lib = paper_library();
        let spec = random_example(seed).build(&lib);
        let report = lint(&spec, &lib.lib, &LintOptions::default());
        let options = CosynOptions::default();
        let result = CoSynthesis::new(&spec, &lib.lib)
            .with_options(options.clone())
            .run();
        if report.has_errors() {
            prop_assert!(
                result.is_err(),
                "lint proved infeasibility but synthesis succeeded"
            );
        } else if let Ok(result) = result {
            let violations = audit(&spec, &lib.lib, &options, &result);
            prop_assert!(
                violations.is_empty(),
                "lint-clean spec synthesized into a bad architecture: {violations:?}"
            );
        }
    }

    /// The pruning oracle only skips provably dead candidates: with and
    /// without it, synthesis reaches the identical architecture (and the
    /// pruned run never explores more).
    #[test]
    fn pruning_preserves_the_architecture(seed in 0u64..1_000_000) {
        let lib = paper_library();
        let spec = random_example(seed).build(&lib);
        let run = |pruning: bool| {
            CoSynthesis::new(&spec, &lib.lib)
                .with_options(CosynOptions { pruning, ..CosynOptions::default() })
                .run()
                .ok()
                .map(|r| r.report)
        };
        match (run(false), run(true)) {
            (Some(off), Some(on)) => {
                prop_assert_eq!(off.pe_count, on.pe_count);
                prop_assert_eq!(off.link_count, on.link_count);
                prop_assert_eq!(off.cost, on.cost);
                prop_assert!(on.candidates_tried <= off.candidates_tried);
            }
            (off, on) => prop_assert_eq!(off.is_some(), on.is_some()),
        }
    }
}

/// The `CosynOptions::lint` pre-pass turns a proved infeasibility into
/// `SynthesisError::LintRejected` before any allocation work runs.
#[test]
fn lint_pre_pass_rejects_proved_infeasibility() {
    let lib = paper_library();
    // One task slower than its period: `task-exceeds-period`.
    let mut b = TaskGraphBuilder::new("dead", Nanos::from_millis(1));
    b.add_task(Task::new(
        "slow",
        ExecutionTimes::uniform(lib.lib.pe_count(), Nanos::from_millis(5)),
    ));
    let spec = SystemSpec::new(vec![b.build().unwrap()]);
    let err = CoSynthesis::new(&spec, &lib.lib)
        .with_options(CosynOptions::default().with_lint())
        .run()
        .unwrap_err();
    assert!(
        matches!(err, SynthesisError::LintRejected { .. }),
        "expected LintRejected, got {err:?}"
    );
}
