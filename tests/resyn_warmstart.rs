//! Golden-trace harness for the online re-synthesis ladder: the
//! structured trace of a warm-start repair sequence on the video-router
//! showcase is committed under `tests/golden/` and must stay
//! byte-identical — across runs, across `--jobs` values, and across
//! refactors that do not intend to change re-synthesis behaviour.
//!
//! The traced sequence (a PE failure, a deadline tighten within slack,
//! and the PE's restoration) stays on the warm rungs, which are
//! single-threaded by design — so worker count can never leak into the
//! trace bytes.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```text
//! CRUSADE_REGEN_GOLDEN=1 cargo test --test resyn_warmstart
//! git diff tests/golden/   # review the behavioural delta
//! ```

// Test code: controlled inputs unwrap freely.
#![allow(clippy::unwrap_used)]

use std::path::PathBuf;
use std::sync::Arc;

use crusade::core::{CoSynthesis, CosynOptions};
use crusade::explore::{resynthesize_sequence, ResynConfig, ResynOutcome, Rung};
use crusade::model::{GraphId, Nanos, SpecDelta};
use crusade::obs::{check_span_nesting, parse_jsonl, Event, TraceSink};
use crusade::workloads::{paper_library, video_router};

const GOLDEN: &str = "video_router.warmstart.jsonl";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(GOLDEN)
}

/// The golden delta sequence: fault, tighten-within-slack, restore.
fn deltas(spec: &crusade::model::SystemSpec, dead: u32) -> Vec<SpecDelta> {
    let current = spec.graph(GraphId::new(0)).deadline();
    vec![
        SpecDelta::FailPe { pe: dead },
        SpecDelta::TightenDeadline {
            graph: GraphId::new(0),
            deadline: Nanos::from_nanos(current.as_nanos() * 99 / 100),
        },
        SpecDelta::RestorePe { pe: dead },
    ]
}

/// Runs the golden sequence at the given job count with a trace sink
/// attached to the ladder (the incumbent synthesis is untraced).
fn warm_trace(jobs: usize) -> (String, ResynOutcome) {
    crusade::verify::install_auditor();
    let paper = paper_library();
    let spec = video_router(&paper);
    let incumbent = CoSynthesis::new(&spec, &paper.lib).run().unwrap();
    let dead = incumbent
        .architecture
        .pes()
        .map(|(id, _)| u32::try_from(id.index()).unwrap())
        .next()
        .expect("video router deploys at least one PE");
    let sink = Arc::new(TraceSink::new());
    let config = ResynConfig {
        jobs,
        base: CosynOptions::default().with_observer(sink.clone()),
        ..ResynConfig::default()
    };
    let out = resynthesize_sequence(&spec, &paper.lib, incumbent, &deltas(&spec, dead), &config)
        .expect("the golden sequence is warm-repairable");
    (sink.to_jsonl(), out)
}

#[test]
fn warmstart_trace_is_golden_and_jobs_invariant() {
    let (trace, out) = warm_trace(1);

    // The premise behind byte-stability: every delta stays on the
    // single-threaded warm rungs.
    for step in &out.report.steps {
        assert!(
            matches!(step.rung, Rung::InPlace | Rung::Warm | Rung::Widened),
            "golden sequence degraded at delta {}: {:?}",
            step.index,
            step.rung
        );
    }
    assert!(!out.report.degraded);

    for jobs in [2, 8] {
        let (other, other_out) = warm_trace(jobs);
        assert_eq!(
            trace, other,
            "trace differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            out.incumbent.report.cost, other_out.incumbent.report.cost,
            "final cost differs at --jobs {jobs}"
        );
        assert_eq!(
            out.incumbent.report.pe_count, other_out.incumbent.report.pe_count,
            "final PE count differs at --jobs {jobs}"
        );
    }

    // Structural invariants: dense sequence numbers, balanced spans, and
    // the resyn vocabulary actually present.
    let records = parse_jsonl(&trace)
        .unwrap_or_else(|(line, e)| panic!("line {line} is not a trace record: {e}"));
    assert!(!records.is_empty(), "empty warm-start trace");
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "seq numbers must be dense");
    }
    check_span_nesting(&records).unwrap_or_else(|e| panic!("span nesting violated: {e}"));
    let applied = records
        .iter()
        .filter(|r| matches!(r.event, Event::DeltaApplied { .. }))
        .count();
    let admitted = records
        .iter()
        .filter(|r| matches!(r.event, Event::AdmissionChecked { admitted: true, .. }))
        .count();
    let completed = records
        .iter()
        .filter(|r| matches!(r.event, Event::ResynStepComplete { .. }))
        .count();
    assert_eq!(applied, 3, "one DeltaApplied per delta");
    assert_eq!(admitted, 3, "every golden delta is admissible");
    assert_eq!(completed, 3, "one ResynStepComplete per delta");

    let golden = golden_path();
    if std::env::var_os("CRUSADE_REGEN_GOLDEN").is_some() {
        std::fs::write(&golden, &trace)
            .unwrap_or_else(|e| panic!("writing {}: {e}", golden.display()));
        return;
    }
    let committed = std::fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "reading {}: {e}\nregenerate with: CRUSADE_REGEN_GOLDEN=1 cargo test --test resyn_warmstart",
            golden.display()
        )
    });
    assert!(
        committed == trace,
        "warm-start trace diverged from the committed golden ({} vs {} bytes). If the \
         behaviour change is intentional, regenerate with CRUSADE_REGEN_GOLDEN=1 and \
         review the diff.",
        committed.len(),
        trace.len()
    );
}
