#!/usr/bin/env bash
# The full local CI gate: build, tests, lints, formatting.
#
# Usage: scripts/ci.sh [--full]
#   --full   additionally runs the ignored eight-example audit sweep and
#            the 104-scenario fault-injection campaign (minutes, release).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace --quiet

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy -D warnings"
    cargo clippy --workspace --all-targets --quiet -- -D warnings
else
    echo "==> cargo clippy unavailable; skipping"
fi

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all --check
else
    echo "==> cargo fmt unavailable; skipping"
fi

echo "==> cargo doc -D warnings"
# Only the crusade crates: the vendored stand-ins don't hold doc-clean.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
    -p crusade-model -p crusade-obs -p crusade-fabric -p crusade-sched \
    -p crusade-lint -p crusade-core -p crusade-ft -p crusade-verify \
    -p crusade-explore -p crusade-workloads -p crusade-bench -p crusade

echo "==> explore smoke (2 examples, portfolio 4, jobs 2)"
cargo run --release -q -p crusade-bench --bin explore -- \
    --examples A1TR,VDRTX --jobs 2 --portfolio 4

echo "==> resyn smoke (2 examples, exit-code convention)"
# Exit 0: a lone PE fault must be warm-repairable on both examples.
RESYN_DELTAS="$(mktemp)"
trap 'rm -f "$RESYN_DELTAS"' EXIT
echo '[{"FailPe":{"pe":0}}]' > "$RESYN_DELTAS"
for example in a1tr vdrtx; do
    cargo run --release -q -p crusade --bin crusade -- \
        resyn "$example" --deltas "$RESYN_DELTAS"
done
# Exit 2: an impossible deadline must be rejected by admission, not
# synthesized — and must report through findings, not `error:`.
echo '[{"TightenDeadline":{"graph":0,"deadline":1}}]' > "$RESYN_DELTAS"
set +e
cargo run --release -q -p crusade --bin crusade -- \
    resyn a1tr --deltas "$RESYN_DELTAS"
resyn_code=$?
set -e
if [[ $resyn_code -ne 2 ]]; then
    echo "resyn smoke: impossible tighten must exit 2, got $resyn_code" >&2
    exit 1
fi

if [[ "${1:-}" == "--full" ]]; then
    echo "==> full audit sweep (8 examples, both modes + FT)"
    cargo test --release -q -p crusade-verify --test audit_examples -- --ignored
    echo "==> fault-injection campaign (104 scenarios)"
    cargo run --release -q -p crusade-bench --bin campaign
    echo "==> allocation-pruning benchmark (8 examples, on/off parity)"
    cargo run --release -q -p crusade-bench --bin pruning
    echo "==> exploration determinism (8 examples, jobs 1/2/8 bit-identical)"
    cargo test --release -q -p crusade-explore --test determinism -- --ignored
    echo "==> trace acceptance sweep (8 examples, metrics vs audit, jobs-invariant)"
    cargo test --release -q -p crusade --test trace_examples -- --ignored
    echo "==> online re-synthesis soak (8 examples, warm vs cold, soundness counters)"
    cargo run --release -q -p crusade-bench --bin warmstart
    cargo test --release -q -p crusade --test bench_artifacts warmstart
    echo "==> line-coverage ratchet (crates/core + crates/sched)"
    scripts/coverage.sh
fi

echo "CI: all checks passed"
