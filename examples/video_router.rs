//! A video distribution router (the paper's VDRTX-style system): MPEG
//! encode/decode datapaths on FPGAs in staggered phase windows, line
//! interfaces on ASICs, and a software control plane.
//!
//! Demonstrates building a realistic specification from the workload
//! blocks and comparing architectures with and without dynamic
//! reconfiguration.
//!
//! Run with `cargo run --release -p crusade --example video_router`.

use crusade::core::{CoSynthesis, CosynOptions};
use crusade::model::{Nanos, SystemConstraints, SystemSpec};
use crusade::workloads::blocks::{asic_interface, hw_pipeline, sw_pipeline};
use crusade::workloads::paper_library;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = paper_library();
    let mut rng = SmallRng::seed_from_u64(0x71DE0);
    let mut graphs = Vec::new();

    // Four MPEG processing chains per phase, two phases: encode runs in
    // the first half of the 100 ms frame, decode in the second.
    let frame = Nanos::from_millis(100);
    let span = Nanos::from_millis(27);
    for ch in 0..4 {
        graphs.push(hw_pipeline(
            &lib,
            &mut rng,
            &format!("mpeg-encode-{ch}"),
            6,
            frame,
            Nanos::ZERO,
            span,
            420,
        ));
        graphs.push(hw_pipeline(
            &lib,
            &mut rng,
            &format!("mpeg-decode-{ch}"),
            6,
            frame,
            Nanos::from_millis(50),
            span,
            420,
        ));
    }
    // Two SONET-style line interfaces on dedicated ASICs.
    for port in 0..2 {
        graphs.push(asic_interface(
            &lib,
            &mut rng,
            &format!("line-{port}"),
            5,
            lib.asics[port],
            Nanos::from_secs(1),
        ));
    }
    // Control and provisioning software.
    graphs.push(sw_pipeline(
        &lib,
        &mut rng,
        "routing-ctl",
        10,
        Nanos::from_millis(10),
    ));
    graphs.push(sw_pipeline(
        &lib,
        &mut rng,
        "provisioning",
        8,
        Nanos::from_secs(1),
    ));

    let spec = SystemSpec::new(graphs).with_constraints(SystemConstraints {
        boot_time_requirement: Nanos::from_millis(5),
        preemption_overhead: Nanos::from_micros(60),
        average_link_ports: 4,
    });
    println!(
        "video router: {} graphs, {} tasks",
        spec.graph_count(),
        spec.task_count()
    );

    let without = CoSynthesis::new(&spec, &lib.lib)
        .with_options(CosynOptions::without_reconfiguration())
        .run()?;
    let with = CoSynthesis::new(&spec, &lib.lib).run()?;

    println!(
        "  without reconfiguration: {:>3} PEs, {:>2} links, {}",
        without.report.pe_count, without.report.link_count, without.report.cost
    );
    println!(
        "  with reconfiguration:    {:>3} PEs, {:>2} links, {}  ({} merges, {} multi-mode devices)",
        with.report.pe_count,
        with.report.link_count,
        with.report.cost,
        with.report.reconfig.merges_accepted,
        with.report.multi_mode_devices
    );
    println!(
        "  cost savings: {:.1}%",
        with.report.cost.savings_versus(without.report.cost)
    );
    Ok(())
}
