//! Static real-time scheduling for CRUSADE co-synthesis.
//!
//! This crate implements the scheduling machinery of Section 5 of the
//! paper:
//!
//! * **Priority levels** ([`priority_levels`]) — deadline-based urgency of
//!   tasks, recomputed after clustering and after every allocation.
//! * **The association array** ([`AssociationArray`]) — per-graph copy
//!   bookkeeping over the hyperperiod, avoiding materialisation of the
//!   Γ ÷ Pᵢ copies of each task graph.
//! * **Periodic timelines** ([`PeriodicInterval`], [`Timeline`],
//!   [`ScheduleBoard`]) — exact O(1) collision arithmetic between
//!   periodically repeating busy intervals, the engine behind first-fit
//!   static scheduling with mixed rates.
//! * **Finish-time estimation** ([`estimate_finish_times`],
//!   [`check_deadlines`]) — the longest-path performance-evaluation step
//!   used by the inner loop of co-synthesis.
//!
//! Scheduling policy: the combination of preemptive and non-preemptive
//! priority scheduling the paper describes is realised by the caller
//! (`crusade-core`) on top of these primitives — tasks are placed in
//! priority order (non-preemptive first fit); when a placement would miss
//! its deadline, the caller may remove a lower-priority victim, place the
//! urgent task, and re-place the victim with the preemption overhead
//! charged.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod association;
mod board;
mod finish;
mod occupant;
mod periodic;
mod priority;
mod timeline;

pub use association::{AssociationArray, AssociationEntry};
pub use board::{ResourceId, ScheduleBoard};
pub use finish::{
    check_deadlines, estimate_finish_times, latest_finish_times, DeadlineMiss, Window,
};
pub use occupant::Occupant;
pub use periodic::PeriodicInterval;
pub use priority::{initial_priority_levels, priority_levels};
pub use timeline::{Placed, Timeline};
