//! Measures the allocator's static pruning oracle on the paper's eight
//! benchmark systems.
//!
//! Each example is synthesized twice — pruning off, then on — and the
//! run asserts the two architectures are identical (PE count, link
//! count, dollar cost): the oracle only skips candidates that would
//! provably fail the allocator's own feasibility checks, so it must
//! never change the result, only the work done reaching it.
//!
//! Exits nonzero if any architecture diverges or if pruning failed to
//! reduce the number of explored allocation candidates on at least four
//! of the eight examples.

use crusade_core::{CoSynthesis, CosynOptions, SynthesisReport};
use crusade_workloads::{paper_examples, paper_library};

fn synthesize(example: &crusade_workloads::PaperExample, pruning: bool) -> Option<SynthesisReport> {
    let lib = paper_library();
    let spec = example.build(&lib);
    let options = CosynOptions {
        pruning,
        ..CosynOptions::default()
    };
    CoSynthesis::new(&spec, &lib.lib)
        .with_options(options)
        .run()
        .ok()
        .map(|r| r.report)
}

fn main() {
    println!("allocation-candidate pruning on the paper's eight examples\n");
    println!(
        "{:<8} {:>6} {:>9} {:>11} {:>11} {:>9} {:>9}",
        "example", "PEs", "cost", "tried(off)", "tried(on)", "pruned", "saved"
    );

    let mut wins = 0usize;
    let mut total = 0usize;
    let mut diverged = false;
    for ex in paper_examples() {
        let off = synthesize(&ex, false);
        let on = synthesize(&ex, true);
        let (off, on) = match (off, on) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                println!("{:<8} infeasible", ex.name);
                continue;
            }
        };
        total += 1;
        if (off.pe_count, off.link_count, off.cost) != (on.pe_count, on.link_count, on.cost) {
            println!(
                "{:<8} DIVERGED: {} PEs ${} without pruning, {} PEs ${} with",
                ex.name,
                off.pe_count,
                off.cost.amount(),
                on.pe_count,
                on.cost.amount()
            );
            diverged = true;
            continue;
        }
        let saved = off.candidates_tried.saturating_sub(on.candidates_tried);
        if saved > 0 {
            wins += 1;
        }
        println!(
            "{:<8} {:>6} {:>8}$ {:>11} {:>11} {:>9} {:>8.1}%",
            ex.name,
            on.pe_count,
            on.cost.amount(),
            off.candidates_tried,
            on.candidates_tried,
            on.candidates_pruned,
            100.0 * saved as f64 / off.candidates_tried.max(1) as f64,
        );
    }

    println!("\npruning reduced explored candidates on {wins}/{total} examples");
    if diverged {
        eprintln!("FAIL: pruning changed a final architecture");
        std::process::exit(1);
    }
    if wins < 4 {
        eprintln!("FAIL: expected a reduction on at least 4 examples");
        std::process::exit(1);
    }
}
