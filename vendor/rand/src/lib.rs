//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no network access to
//! crates.io, so this workspace vendors a minimal, fully deterministic
//! re-implementation of the `rand` API surface it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`Rng::gen`], and [`seq::SliceRandom::shuffle`]/`choose`.
//!
//! The generator behind both [`rngs::SmallRng`] and [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — high quality for simulation
//! purposes and stable across platforms, which keeps every workload
//! generator in this repository reproducible.

/// Core trait: a source of random `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator from OS entropy. The stand-in derives the seed
    /// from the system clock; callers that need determinism must use
    /// [`SeedableRng::seed_from_u64`].
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (low as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        Self::sample_half_open(rng, low, high.next_up())
    }
}

impl SampleUniform for f32 {
    fn sample_half_open(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        f64::sample_half_open(rng, low as f64, high as f64) as f32
    }
    fn sample_inclusive(rng: &mut dyn RngCore, low: Self, high: Self) -> Self {
        f64::sample_inclusive(rng, low as f64, high as f64) as f32
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

impl Standard for u64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl Standard for f32 {
    fn draw(rng: &mut dyn RngCore) -> Self {
        f64::draw(rng) as f32
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::draw(self) < p
    }

    /// Draws a value of `T` from its standard distribution.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the stand-in for rand's `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_splitmix(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Same engine as [`SmallRng`]; provided for API compatibility.
    pub type StdRng = SmallRng;
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Shuffling and choosing, implemented for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

/// A default thread-local-free convenience generator (clock-seeded).
pub fn thread_rng() -> rngs::SmallRng {
    <rngs::SmallRng as SeedableRng>::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
