//! Benchmarks the parallel multi-start exploration engine against plain
//! sequential CRUSADE on the paper's eight examples.
//!
//! For every selected example the run measures four configurations:
//!
//! 1. **sequential CRUSADE** — a single baseline-policy synthesis;
//! 2. **naive portfolio** — every portfolio member synthesized and
//!    audited one at a time with no shared state (what multi-start
//!    looks like without this subsystem);
//! 3. **sequential portfolio** — the exploration engine at `--jobs 1`
//!    (shared incumbent and evaluation cache, single thread);
//! 4. **parallel portfolio** — the engine at `--jobs N`.
//!
//! It asserts that the parallel winner matches both sequential winners
//! exactly (cost and policy id — the engine's determinism guarantee)
//! and that the portfolio never costs more than sequential CRUSADE,
//! then writes `BENCH_explore.json` with best cost versus sequential,
//! wall-clock times, speedup over the naive portfolio, cache hit-rate
//! and pruned-run counts. The host's core count is recorded with every
//! row: on a single-core machine the parallel speedup degenerates to
//! whatever the shared incumbent and cache save, so interpret `speedup`
//! together with `cores`.
//!
//! ```text
//! cargo run --release -p crusade-bench --bin explore -- [--jobs N] [--portfolio M] [--examples A,B]
//! ```

use std::time::Instant;

use crusade_bench::json;
use crusade_core::{CoSynthesis, CosynOptions};
use crusade_explore::{explore, ExploreConfig, ExploreOutcome};
use crusade_model::{ResourceLibrary, SystemSpec};
use crusade_workloads::{paper_examples, paper_library};
use serde::Serialize;

/// One example's measurements across the three configurations.
#[derive(Debug, Clone, Serialize)]
struct ExploreRecord {
    example: String,
    tasks: usize,
    /// Cost of a single baseline-policy CRUSADE run.
    sequential_cost: u64,
    /// Cost of the portfolio winner (identical across job counts).
    best_cost: u64,
    /// Winning policy id.
    winner_policy: u32,
    /// Dollars saved by the portfolio over sequential CRUSADE.
    saved: u64,
    /// Wall-clock of the naive member-at-a-time portfolio, milliseconds.
    naive_portfolio_wall_ms: f64,
    /// Wall-clock of the engine at `--jobs 1`, milliseconds.
    sequential_portfolio_wall_ms: f64,
    /// Wall-clock of the engine at `--jobs N`, milliseconds.
    parallel_wall_ms: f64,
    /// `naive_portfolio_wall_ms / parallel_wall_ms`.
    speedup: f64,
    /// Cores available to this run — the parallelism actually on offer.
    cores: usize,
    /// Shared-evaluation-cache hit rate of the parallel run.
    cache_hit_rate: f64,
    /// Portfolio members aborted by the cost incumbent (parallel run).
    dominated_runs: usize,
    /// Portfolio members skipped outright by the lint lower bound
    /// (parallel run).
    skipped_by_bound: usize,
    /// Structured-metrics snapshot aggregated over every member of the
    /// parallel run (schedule-dependent, like the cache statistics).
    metrics: crusade_obs::MetricsSnapshot,
}

fn flag_usize(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
        .max(1)
}

/// Runs every portfolio member to completion, one at a time, with no
/// shared incumbent or cache — scripted multi-start, the baseline this
/// subsystem replaces. Returns the audit-clean winner's (cost, policy
/// id) and the wall-clock in milliseconds.
fn naive_portfolio(
    spec: &SystemSpec,
    lib: &ResourceLibrary,
    portfolio: usize,
) -> (Option<(u64, u32)>, f64) {
    let t = Instant::now();
    let mut best: Option<(u64, u32)> = None;
    for policy in crusade_explore::default_portfolio(portfolio) {
        let options = CosynOptions::default().with_policy(policy.clone());
        let Ok(result) = CoSynthesis::new(spec, lib)
            .with_options(options.clone())
            .run()
        else {
            continue;
        };
        if !crusade_verify::audit(spec, lib, &options.effective(), &result).is_empty() {
            continue;
        }
        let key = (result.report.cost.amount(), policy.id);
        if best.map_or(true, |b| key < b) {
            best = Some(key);
        }
    }
    (best, t.elapsed().as_secs_f64() * 1e3)
}

fn timed_explore(
    spec: &SystemSpec,
    lib: &ResourceLibrary,
    portfolio: usize,
    jobs: usize,
    base: CosynOptions,
) -> (ExploreOutcome, f64) {
    let config = ExploreConfig::new(portfolio, jobs).with_base(base);
    let t = Instant::now();
    let outcome = match explore(spec, lib, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("FAIL: exploration at {jobs} job(s) found no feasible member: {e}");
            std::process::exit(1);
        }
    };
    (outcome, t.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jobs = flag_usize(&args, "--jobs", 8);
    let portfolio = flag_usize(&args, "--portfolio", 8);
    let selected: Option<Vec<String>> = args
        .iter()
        .position(|a| a == "--examples")
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.split(',')
                .map(|s| s.trim().to_ascii_uppercase())
                .collect()
        });

    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("multi-start exploration: portfolio {portfolio}, {jobs} job(s), {cores} core(s)\n");
    println!(
        "{:<8} {:>6} | {:>9} {:>9} {:>7} | {:>9} {:>9} {:>9} {:>8} | {:>6} {:>5} {:>5}",
        "example",
        "tasks",
        "seq cost",
        "best",
        "policy",
        "naive(ms)",
        "eng1(ms)",
        "par(ms)",
        "speedup",
        "cache%",
        "dom",
        "skip"
    );

    let lib = paper_library();
    let mut records: Vec<ExploreRecord> = Vec::new();
    let mut failed = false;
    for ex in paper_examples() {
        if let Some(names) = &selected {
            if !names.iter().any(|n| n == ex.name) {
                continue;
            }
        }
        let spec = ex.build(&lib);
        let sequential = match CoSynthesis::new(&spec, &lib.lib)
            .with_options(CosynOptions::default())
            .run()
        {
            Ok(r) => r,
            Err(e) => {
                println!("{:<8} sequential CRUSADE failed: {e}", ex.name);
                failed = true;
                continue;
            }
        };
        let (naive_best, naive_ms) = naive_portfolio(&spec, &lib.lib, portfolio);
        let (seq_pf, seq_pf_ms) =
            timed_explore(&spec, &lib.lib, portfolio, 1, CosynOptions::default());
        let metrics = std::sync::Arc::new(crusade_obs::Metrics::new());
        let (par, par_ms) = timed_explore(
            &spec,
            &lib.lib,
            portfolio,
            jobs,
            CosynOptions::default().with_observer(metrics.clone()),
        );

        // The engine's determinism guarantee: same winner at any job count.
        if (par.winner.report.cost, par.policy.id) != (seq_pf.winner.report.cost, seq_pf.policy.id)
        {
            println!(
                "{:<8} NONDETERMINISTIC: jobs=1 policy #{} {} vs jobs={jobs} policy #{} {}",
                ex.name,
                seq_pf.policy.id,
                seq_pf.winner.report.cost,
                par.policy.id,
                par.winner.report.cost,
            );
            failed = true;
            continue;
        }
        // Incumbent aborts and cache skips must never change the winner
        // the naive member-at-a-time portfolio would have picked.
        if naive_best != Some((par.winner.report.cost.amount(), par.policy.id)) {
            println!(
                "{:<8} WINNER DRIFT: naive portfolio picked {naive_best:?}, engine picked ({}, {})",
                ex.name,
                par.winner.report.cost.amount(),
                par.policy.id,
            );
            failed = true;
            continue;
        }
        // The portfolio contains the baseline policy, so it can never
        // lose to sequential CRUSADE.
        if par.winner.report.cost > sequential.report.cost {
            println!(
                "{:<8} REGRESSION: portfolio {} worse than sequential {}",
                ex.name, par.winner.report.cost, sequential.report.cost,
            );
            failed = true;
            continue;
        }

        let speedup = naive_ms / par_ms.max(1e-9);
        let record = ExploreRecord {
            example: ex.name.to_string(),
            tasks: spec.task_count(),
            sequential_cost: sequential.report.cost.amount(),
            best_cost: par.winner.report.cost.amount(),
            winner_policy: par.policy.id,
            saved: sequential
                .report
                .cost
                .saturating_sub(par.winner.report.cost)
                .amount(),
            naive_portfolio_wall_ms: naive_ms,
            sequential_portfolio_wall_ms: seq_pf_ms,
            parallel_wall_ms: par_ms,
            speedup,
            cores,
            cache_hit_rate: par.stats.cache_hit_rate(),
            dominated_runs: par.stats.dominated,
            skipped_by_bound: par.stats.skipped_by_bound,
            metrics: metrics.snapshot(),
        };
        println!(
            "{:<8} {:>6} | {:>8}$ {:>8}$ {:>7} | {:>9.0} {:>9.0} {:>9.0} {:>7.2}x | {:>5.1}% {:>5} {:>5}",
            record.example,
            record.tasks,
            record.sequential_cost,
            record.best_cost,
            record.winner_policy,
            record.naive_portfolio_wall_ms,
            record.sequential_portfolio_wall_ms,
            record.parallel_wall_ms,
            record.speedup,
            record.cache_hit_rate * 100.0,
            record.dominated_runs,
            record.skipped_by_bound,
        );
        records.push(record);
    }

    if !records.is_empty() {
        let geomean: f64 =
            (records.iter().map(|r| r.speedup.ln()).sum::<f64>() / records.len() as f64).exp();
        let saved: u64 = records.iter().map(|r| r.saved).sum();
        println!(
            "\n{} example(s): geomean speedup {geomean:.2}x at {jobs} job(s) on {cores} core(s), \
             ${saved} total saved vs sequential CRUSADE",
            records.len()
        );
    }
    if let Err(e) = json::write("BENCH_explore.json", &records) {
        eprintln!("BENCH_explore.json: {e}");
        std::process::exit(1);
    }
    if failed {
        eprintln!("FAIL: at least one example violated an exploration invariant");
        std::process::exit(1);
    }
}
