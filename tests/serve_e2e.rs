//! End-to-end tests for the `crusade-serve` daemon: an in-process server
//! driven through the real TCP client — submission, fingerprint-cache
//! hits, status, streaming, admission refusals, warm-start re-synthesis
//! — plus a binary-level test of the documented exit-code contract for
//! `crusade serve` / `crusade client` (SIGTERM-free shutdown, exit 0).

// Test code: unwraps freely.
#![allow(clippy::unwrap_used)]

use std::sync::{Arc, Mutex};

use crusade::model::{GraphId, Nanos, ResourceLibrary, SpecDelta};
use crusade::serve::{
    ClientError, ProtocolErrorKind, ServeClient, ServeConfig, ServerHandle, SpecPayload,
};
use crusade::workloads::motivating_example;

fn sample_payload() -> SpecPayload {
    let (library, spec) = motivating_example();
    SpecPayload { library, spec }
}

/// Binds a server on an ephemeral port with test-friendly sizing.
fn bind(config: ServeConfig) -> (ServerHandle, String) {
    let server = ServerHandle::bind(config).expect("binding test server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

#[test]
fn submit_duplicate_hits_cache_and_shutdown_drains() {
    let (server, addr) = bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let client = ServeClient::new(addr, "e2e");
    let payload = sample_payload();

    let first = client
        .submit(payload.clone(), 4, true, false, |_| {})
        .unwrap();
    assert!(!first.cached, "first submission cannot be a cache hit");
    assert!(first.audit_clean);
    assert!(first.cost > 0 && first.pes > 0);
    assert_eq!(first.fingerprint.len(), 16);

    // The identical submission must be served from the cache with a
    // bit-identical result and no synthesis run.
    let second = client
        .submit(payload.clone(), 4, true, false, |_| {})
        .unwrap();
    assert!(second.cached, "duplicate submission missed the cache");
    assert_eq!(
        (second.cost, second.policy, second.fingerprint.clone()),
        (first.cost, first.policy, first.fingerprint.clone())
    );
    assert_eq!(second.run_ms, 0.0, "cache hit reported synthesis time");

    // A different portfolio is a different cache key.
    let third = client.submit(payload, 2, true, false, |_| {}).unwrap();
    assert!(!third.cached, "portfolio is not part of the cache key");
    assert_ne!(third.fingerprint, first.fingerprint);

    let status = client.status(first.job).unwrap();
    assert_eq!(status.state, "done");
    assert_eq!(status.result.unwrap().cost, first.cost);

    // Cancelling a finished job is idempotent: state is unchanged.
    let cancelled = client.cancel(first.job).unwrap();
    assert_eq!(cancelled.state, "done");

    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
    assert_eq!(stats.completed, 2);
    assert!(!stats.draining);

    let report = client.shutdown().unwrap();
    assert_eq!(
        report.drained + report.cancelled,
        0,
        "drain saw idle server"
    );
    server.wait().unwrap();
}

#[test]
fn streamed_submission_forwards_dense_events() {
    let (server, addr) = bind(ServeConfig::default());
    let client = ServeClient::new(addr, "e2e-stream");
    let seqs: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&seqs);
    let result = client
        .submit(sample_payload(), 2, true, true, move |event| {
            sink.lock().unwrap().push(event.seq);
        })
        .unwrap();
    let seqs = seqs.lock().unwrap();
    assert!(!seqs.is_empty(), "streamed submission produced no events");
    // Per-job sequence numbers are dense from 0 in forwarding order.
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(*seq, i as u64, "event stream has gaps");
    }
    assert!(result.cost > 0);
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn admission_refusals_are_typed() {
    let (server, addr) = bind(ServeConfig {
        client_quota: 0,
        max_frame_bytes: 16 << 10,
        ..ServeConfig::default()
    });
    let client = ServeClient::new(addr, "e2e-refused");

    // Quota zero: every submission is refused before it queues.
    match client.submit(sample_payload(), 1, true, false, |_| {}) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ProtocolErrorKind::QuotaExceeded),
        other => panic!("quota-zero submit: expected QuotaExceeded, got {other:?}"),
    }

    // A payload with an empty library is refused as InvalidSpec;
    // validation runs before admission, so the zero quota cannot mask it.
    let (_, spec) = motivating_example();
    let hollow = SpecPayload {
        library: ResourceLibrary::new(),
        spec,
    };
    match client.submit(hollow, 1, true, false, |_| {}) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ProtocolErrorKind::InvalidSpec),
        other => panic!("hollow submit: expected InvalidSpec, got {other:?}"),
    }

    // Status of a job that never existed.
    match client.status(424_242) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ProtocolErrorKind::UnknownJob),
        other => panic!("unknown status: expected UnknownJob, got {other:?}"),
    }

    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn oversized_frames_are_refused_with_a_typed_error() {
    let (server, addr) = bind(ServeConfig {
        max_frame_bytes: 256,
        ..ServeConfig::default()
    });
    let client = ServeClient::new(addr, "e2e-oversize");
    match client.submit(sample_payload(), 1, true, false, |_| {}) {
        Err(ClientError::Server(e)) => assert_eq!(e.kind, ProtocolErrorKind::FrameTooLarge),
        other => panic!("oversized submit: expected FrameTooLarge, got {other:?}"),
    }
    // The connection-level refusal must not have wedged the server.
    client.shutdown().unwrap();
    server.wait().unwrap();
}

#[test]
fn resyn_warm_starts_from_the_fingerprint_cache() {
    let (server, addr) = bind(ServeConfig::default());
    let client = ServeClient::new(addr, "e2e-resyn");
    let payload = sample_payload();

    // Prime the cache, then drive one mild single-delta re-synthesis:
    // the incumbent must come from the cache and resolve on a warm rung
    // (never a portfolio/cold restart).
    let submitted = client
        .submit(payload.clone(), 4, true, false, |_| {})
        .unwrap();
    let graph = GraphId::new(0);
    let deadline = payload.spec.graph(graph).deadline();
    let delta = SpecDelta::TightenDeadline {
        graph,
        deadline: Nanos::from_nanos(deadline.as_nanos() * 99 / 100),
    };
    let resyn = client.resyn(payload.clone(), vec![delta], 4, true).unwrap();
    assert_eq!(resyn.fingerprint, submitted.fingerprint);
    assert!(
        resyn.incumbent_cached,
        "resyn synthesized its incumbent cold"
    );
    assert_eq!(resyn.incumbent_cost, submitted.cost);
    assert!(!resyn.degraded, "mild delta degraded to a restart rung");
    assert_eq!(resyn.steps.len(), 1);
    assert!(
        matches!(
            resyn.steps[0].rung.as_str(),
            "in-place" | "warm" | "widened"
        ),
        "expected a warm rung, got {}",
        resyn.steps[0].rung
    );
    assert!(resyn.audit_clean);

    // A resyn against a spec the cache has never seen synthesizes the
    // incumbent cold — and still succeeds.
    let delta = SpecDelta::TightenDeadline {
        graph,
        deadline: Nanos::from_nanos(deadline.as_nanos() * 99 / 100),
    };
    let cold = client.resyn(payload, vec![delta], 3, true).unwrap();
    assert!(!cold.incumbent_cached, "unseen fingerprint reported cached");
    assert!(cold.final_cost > 0 && cold.audit_clean);

    client.shutdown().unwrap();
    server.wait().unwrap();
}

/// The deterministic-shutdown satellite at the binary level: `crusade
/// serve` starts, serves a submission and a cache hit through `crusade
/// client`, and a `Shutdown` request — no signal — exits the server
/// with status 0.
#[test]
fn serve_binary_shuts_down_cleanly_with_exit_zero() {
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("crusade-serve-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("sample.json");
    let port_file = dir.join("port.txt");
    let _ = std::fs::remove_file(&port_file);

    let out = Command::new(env!("CARGO_BIN_EXE_crusade"))
        .args(["sample", spec.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "sample generation failed");

    let mut server = Command::new(env!("CARGO_BIN_EXE_crusade"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--port-file",
            port_file.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // The server writes its ephemeral address once it is listening.
    let mut addr = String::new();
    for _ in 0..300 {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if !text.trim().is_empty() {
                addr = text.trim().to_string();
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(!addr.is_empty(), "server never wrote its port file");

    let client = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_crusade"))
            .args(["client"])
            .args(args)
            .args(["--addr", &addr])
            .output()
            .unwrap()
    };

    let first = client(&["submit", spec.to_str().unwrap(), "--portfolio", "2"]);
    assert_eq!(
        first.status.code(),
        Some(0),
        "submit failed: {}",
        String::from_utf8_lossy(&first.stderr)
    );
    let second = client(&["submit", spec.to_str().unwrap(), "--portfolio", "2"]);
    assert_eq!(second.status.code(), Some(0));
    assert!(
        String::from_utf8_lossy(&second.stdout).contains("cached"),
        "duplicate submission was not served from the cache"
    );

    let shutdown = client(&["shutdown"]);
    assert_eq!(
        shutdown.status.code(),
        Some(0),
        "shutdown failed: {}",
        String::from_utf8_lossy(&shutdown.stderr)
    );

    // No signal was ever sent: the drain alone must exit the server with
    // status 0.
    let status = server.wait().unwrap();
    assert_eq!(status.code(), Some(0), "server exited non-zero after drain");
}

#[test]
fn generated_specs_fingerprint_by_seed() {
    // Generated families flow through the daemon like any payload: a
    // resubmission of the same seed is a fingerprint-cache hit, a seed
    // bump is a miss with a different fingerprint.
    let (server, addr) = bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let client = ServeClient::new(addr, "e2e-gen");
    let config = crusade::gen::GenConfig {
        seed: 7,
        utilization: 1.2,
        ..crusade::gen::GenConfig::default()
    };
    let payload = |config: &crusade::gen::GenConfig| {
        let (library, spec) = crusade::gen::generate_payload(config);
        SpecPayload { library, spec }
    };

    let first = client
        .submit(payload(&config), 2, true, false, |_| {})
        .unwrap();
    assert!(!first.cached, "first generated submission cannot hit");
    assert!(first.audit_clean);

    let replay = client
        .submit(payload(&config), 2, true, false, |_| {})
        .unwrap();
    assert!(replay.cached, "same-seed regeneration missed the cache");
    assert_eq!(replay.fingerprint, first.fingerprint);
    assert_eq!(replay.cost, first.cost);

    let bumped = crusade::gen::GenConfig {
        seed: config.seed + 1,
        ..config
    };
    let other = client
        .submit(payload(&bumped), 2, true, false, |_| {})
        .unwrap();
    assert!(!other.cached, "a seed bump must be a distinct spec");
    assert_ne!(other.fingerprint, first.fingerprint);

    let stats = client.stats().unwrap();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);

    client.shutdown().unwrap();
    server.wait().unwrap();
}
