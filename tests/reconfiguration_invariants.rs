//! Property-based invariants of dynamic reconfiguration: on randomly
//! generated phase-structured workloads, merging never raises cost, never
//! breaks a deadline, keeps modes within capacity, and leaves the tasks of
//! any two different modes of one device time-disjoint (with boot room)
//! unless the graph is shared across the images.

// Test code: generator helpers unwrap and cast freely on controlled inputs.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use crusade::core::{CoSynthesis, CosynOptions};
use crusade::model::{
    Dollars, ExecutionTimes, GlobalEdgeId, GlobalTaskId, HwDemand, LinkClass, LinkType, Nanos,
    PeClass, PeType, PeTypeId, PpeAttrs, PpeKind, Preference, ResourceLibrary, SystemConstraints,
    SystemSpec, Task, TaskGraph, TaskGraphBuilder,
};
use crusade::sched::{check_deadlines, estimate_finish_times, Occupant};
use proptest::prelude::*;

const FRAME_MS: u64 = 100;
const BOOT_MS: u64 = 5;

fn library() -> ResourceLibrary {
    let mut lib = ResourceLibrary::new();
    lib.add_pe(PeType::new(
        "fpga",
        Dollars::new(220),
        PeClass::Ppe(PpeAttrs {
            kind: PpeKind::Fpga,
            pfus: 1000,
            flip_flops: 2000,
            pins: 200,
            boot_memory_bytes: 24 << 10,
            config_bits_per_pfu: 150,
            partial_reconfig: false,
        }),
    ));
    lib.add_link(LinkType::new(
        "bus",
        Dollars::new(10),
        LinkClass::Bus,
        8,
        vec![Nanos::from_nanos(300)],
        64,
        Nanos::from_micros(1),
    ));
    lib
}

fn hw_graph(name: String, phase: u64, phases: u64, n_tasks: usize, pfus: u32) -> TaskGraph {
    let slot_ms = FRAME_MS / phases;
    let span = Nanos::from_millis(slot_ms * 11 / 20);
    let mut b = TaskGraphBuilder::new(name, Nanos::from_millis(FRAME_MS));
    let per_task = span / (2 * n_tasks as u64);
    let mut prev = None;
    for i in 0..n_tasks {
        let mut t = Task::new(
            format!("hw{i}"),
            ExecutionTimes::from_entries(1, [(PeTypeId::new(0), per_task)]),
        );
        t.preference = Preference::Only(vec![PeTypeId::new(0)]);
        let p = (pfus / n_tasks as u32).max(4);
        t.hw = HwDemand::new(0, p, p, 4);
        let id = b.add_task(t);
        if let Some(prev) = prev {
            b.add_edge(prev, id, 64);
        }
        prev = Some(id);
    }
    b.est(Nanos::from_millis(slot_ms * phase))
        .deadline(span)
        .build()
        .unwrap()
}

fn spec_from(phases: u64, blocks: &[(u64, usize, u32)]) -> SystemSpec {
    let graphs = blocks
        .iter()
        .enumerate()
        .map(|(i, &(phase, n, pfus))| hw_graph(format!("g{i}"), phase % phases, phases, n, pfus))
        .collect();
    SystemSpec::new(graphs).with_constraints(SystemConstraints {
        boot_time_requirement: Nanos::from_millis(BOOT_MS),
        preemption_overhead: Nanos::from_micros(50),
        average_link_ports: 2,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn merging_never_raises_cost_and_keeps_deadlines(
        phases in 2u64..5,
        blocks in prop::collection::vec((0u64..5, 2usize..5, 100u32..500), 2..8),
    ) {
        let lib = library();
        let spec = spec_from(phases, &blocks);
        let base = CoSynthesis::new(&spec, &lib)
            .with_options(CosynOptions::without_reconfiguration())
            .run();
        let recon = CoSynthesis::new(&spec, &lib).run();
        let (Ok(base), Ok(recon)) = (base, recon) else {
            // Some random workloads are infeasible; both modes must agree.
            return Ok(());
        };
        prop_assert!(recon.report.cost <= base.report.cost,
            "reconfig {} > baseline {}", recon.report.cost, base.report.cost);
        prop_assert!(recon.report.pe_count <= base.report.pe_count);

        // Deadlines hold on the final (merged) schedule.
        for (g, graph) in spec.graphs() {
            let finishes = estimate_finish_times(
                graph,
                |t| recon.architecture.board.window(Occupant::Task(GlobalTaskId::new(g, t))),
                |_| Nanos::ZERO,
                |e| recon.architecture.board.window(Occupant::Edge(GlobalEdgeId::new(g, e))),
                |_| Nanos::ZERO,
            );
            prop_assert!(check_deadlines(graph, &finishes).is_empty());
        }
    }

    #[test]
    fn modes_stay_within_caps_and_disjoint(
        phases in 2u64..5,
        blocks in prop::collection::vec((0u64..5, 2usize..5, 100u32..500), 2..8),
    ) {
        let lib = library();
        let spec = spec_from(phases, &blocks);
        let Ok(recon) = CoSynthesis::new(&spec, &lib).run() else { return Ok(()); };
        let attrs = lib.pe(PeTypeId::new(0)).as_ppe().unwrap().clone();
        let pfu_cap = (attrs.pfus as f64 * 0.70) as u32;
        let boot = Nanos::from_millis(BOOT_MS);

        for (_, pe) in recon.architecture.pes() {
            for mode in &pe.modes {
                prop_assert!(mode.used_hw.pfus <= pfu_cap);
            }
            // Cross-mode tasks (of graphs not shared between the two
            // modes) never overlap, and keep boot room between them.
            for (i, mi) in pe.modes.iter().enumerate() {
                for mj in pe.modes.iter().skip(i + 1) {
                    for &gi in &mi.graphs {
                        if mj.graphs.contains(&gi) {
                            continue; // shared across images
                        }
                        for &gj in &mj.graphs {
                            if mi.graphs.contains(&gj) || gi == gj {
                                continue;
                            }
                            let win = |g: crusade::model::GraphId| {
                                let graph = spec.graph(g);
                                let mut lo = Nanos::MAX;
                                let mut hi = Nanos::ZERO;
                                for (t, _) in graph.tasks() {
                                    if let Some(w) = recon.architecture.board.window(
                                        Occupant::Task(GlobalTaskId::new(g, t)),
                                    ) {
                                        lo = lo.min(w.start);
                                        hi = hi.max(w.finish);
                                    }
                                }
                                (lo, hi)
                            };
                            let (lo_i, hi_i) = win(gi);
                            let (lo_j, hi_j) = win(gj);
                            // Disjoint with >= boot gap on one side
                            // (within the common 100 ms frame).
                            let gap_ij = lo_j.checked_sub(hi_i);
                            let gap_ji = lo_i.checked_sub(hi_j);
                            let ok = gap_ij.map(|g| g >= boot).unwrap_or(false)
                                || gap_ji.map(|g| g >= boot).unwrap_or(false);
                            prop_assert!(
                                ok,
                                "modes overlap or lack boot room: [{lo_i},{hi_i}) vs [{lo_j},{hi_j})"
                            );
                        }
                    }
                }
            }
        }
    }
}
