//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! a simplified serialization framework with the same surface the code
//! uses: `#[derive(Serialize, Deserialize)]`, `#[serde(transparent)]`, and
//! JSON round-trips through the companion `serde_json` stand-in.
//!
//! Instead of serde's visitor architecture, everything funnels through a
//! small [`Value`] tree: [`Serialize`] renders a value into a [`Value`],
//! [`Deserialize`] rebuilds it from one. Formats (the vendored
//! `serde_json`) print and parse [`Value`]s. The derive macro emits the
//! same external representations real serde would for this workspace's
//! types: structs as maps, newtype structs transparently as their inner
//! value, and enums externally tagged.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The universal data tree both traits speak.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / a `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (positive ones normalize to [`Value::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence.
    Seq(Vec<Value>),
    /// A map with string keys, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Creates a "invalid type" error.
    pub fn invalid_type(expected: &str, found: &Value) -> Self {
        DeError {
            msg: format!("invalid type: expected {expected}, found {}", found.kind()),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the universal [`Value`] tree.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn serialize_value(&self) -> Value;
}

/// Rebuilds `Self` from the universal [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a [`Value`] into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetches a struct field from a map, treating a missing key as `null`
/// (which lets `Option` fields default to `None` while any other type
/// reports an invalid-type error naming the field).
///
/// # Errors
///
/// Returns [`DeError`] when `v` is not a map at all.
pub fn map_field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    match v {
        Value::Map(_) => Ok(v.get(name).unwrap_or(&Value::Null)),
        other => Err(DeError::invalid_type("map", other)),
    }
}

/// Wraps a field deserialization so errors name the field.
///
/// # Errors
///
/// Propagates the inner [`DeError`] with the field name prefixed.
pub fn field<T: Deserialize>(v: &Value, ty: &str, name: &str) -> Result<T, DeError> {
    let inner = map_field(v, name)?;
    T::deserialize_value(inner).map_err(|e| DeError::custom(format!("field `{ty}.{name}`: {e}")))
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range"))),
                    other => Err(DeError::invalid_type("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("integer {n} out of range"))),
                    other => Err(DeError::invalid_type("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::invalid_type("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::invalid_type("bool", other)),
        }
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap_or('\0')),
            other => Err(DeError::invalid_type("single-char string", other)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::invalid_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::invalid_type("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl Serialize for std::time::Duration {
    fn serialize_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}
impl Deserialize for std::time::Duration {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let secs = field(v, "Duration", "secs")?;
        let nanos: u32 = field(v, "Duration", "nanos")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

// Maps serialize as sequences of `[key, value]` pairs: keys here are not
// strings (e.g. schedule occupants), which a JSON object cannot hold.
impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}
impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        entry_pairs(v)?
            .map(|pair| {
                let (k, v) = pair?;
                Ok((K::deserialize_value(k)?, V::deserialize_value(v)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        entry_pairs(v)?
            .map(|pair| {
                let (k, v) = pair?;
                Ok((K::deserialize_value(k)?, V::deserialize_value(v)?))
            })
            .collect()
    }
}

impl<T: Serialize, S> Serialize for std::collections::HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T, S> Deserialize for std::collections::HashSet<T, S>
where
    T: Deserialize + Eq + std::hash::Hash,
    S: std::hash::BuildHasher + Default,
{
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::invalid_type("sequence", other)),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(DeError::invalid_type("sequence", other)),
        }
    }
}

/// Iterates a map-as-pair-sequence value, yielding `(key, value)` value
/// pairs for the map impls above.
fn entry_pairs(
    v: &Value,
) -> Result<impl Iterator<Item = Result<(&Value, &Value), DeError>>, DeError> {
    match v {
        Value::Seq(items) => Ok(items.iter().map(|pair| match pair {
            Value::Seq(kv) if kv.len() == 2 => Ok((&kv[0], &kv[1])),
            other => Err(DeError::invalid_type("[key, value] pair", other)),
        })),
        other => Err(DeError::invalid_type("sequence of pairs", other)),
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Seq(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected a tuple of {expected}, found {} elements",
                                items.len()
                            )));
                        }
                        Ok(($($name::deserialize_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::invalid_type("sequence", other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        assert_eq!(u32::deserialize_value(&42u32.serialize_value()), Ok(42));
        assert_eq!(i64::deserialize_value(&(-7i64).serialize_value()), Ok(-7));
        assert_eq!(
            String::deserialize_value(&"hi".to_string().serialize_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Option::<u8>::deserialize_value(&Value::Null),
            Ok(None::<u8>)
        );
        assert_eq!(
            Vec::<u8>::deserialize_value(&vec![1u8, 2].serialize_value()),
            Ok(vec![1, 2])
        );
    }

    #[test]
    fn missing_map_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::U64(1))]);
        assert_eq!(map_field(&v, "b"), Ok(&Value::Null));
        assert!(map_field(&Value::U64(3), "a").is_err());
    }

    #[test]
    fn range_checked_integers() {
        assert!(u8::deserialize_value(&Value::U64(300)).is_err());
        assert!(u32::deserialize_value(&Value::I64(-1)).is_err());
    }
}
