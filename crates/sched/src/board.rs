//! The schedule board: all resource timelines of a candidate architecture.
//!
//! Co-synthesis builds the schedule *incrementally*: each time the inner
//! loop tries an allocation, the new cluster's tasks and edges are placed
//! on the board; if the allocation is rejected the placements are removed
//! again. The board maps opaque resource ids (assigned by the architecture
//! model in `crusade-core`) to [`Timeline`]s and keeps a reverse index from
//! occupant to placement for O(1) window lookups.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crusade_model::Nanos;
use crusade_obs::{Event, ObserverHandle};

use crate::{Occupant, PeriodicInterval, Timeline, Window};

/// Identifies one schedulable resource (a PE mode's execution engine or a
/// link) on a [`ScheduleBoard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ResourceId(u32);

impl ResourceId {
    /// Creates a resource id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` — far beyond any realisable
    /// board.
    pub const fn new(index: usize) -> Self {
        assert!(
            index <= u32::MAX as usize,
            "resource index exceeds u32::MAX"
        );
        #[allow(clippy::cast_possible_truncation)] // asserted above
        ResourceId(index as u32)
    }

    /// Raw index into the board's timeline list.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ResourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// All timelines of a candidate architecture plus the occupant index.
///
/// # Examples
///
/// ```
/// use crusade_model::{GlobalTaskId, GraphId, Nanos, TaskId};
/// use crusade_sched::{Occupant, ScheduleBoard};
///
/// let mut board = ScheduleBoard::new();
/// let cpu = board.add_resource();
/// let t = Occupant::Task(GlobalTaskId::new(GraphId::new(0), TaskId::new(0)));
/// let start = board
///     .place(cpu, t, Nanos::ZERO, Nanos::from_micros(10), Nanos::from_micros(100), Nanos::MAX)
///     .unwrap();
/// assert_eq!(start, Nanos::ZERO);
/// assert_eq!(board.window(t).unwrap().finish, Nanos::from_micros(10));
/// assert_eq!(board.resource_of(t), Some(cpu));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScheduleBoard {
    timelines: Vec<Timeline>,
    // A BTreeMap so that iteration (`placements`, `occupants_of`) and
    // the serialized form are deterministic — the engine's winners must
    // encode bit-identically run to run.
    index: BTreeMap<Occupant, (ResourceId, PeriodicInterval)>,
    // Disabled by default; serializes as `null` and deserializes back to
    // disabled, so persisted boards stay pure data.
    observer: ObserverHandle,
}

impl ScheduleBoard {
    /// An empty board.
    pub fn new() -> Self {
        ScheduleBoard::default()
    }

    /// Installs (or clears) the structured-event observer. Every
    /// subsequent [`place`](Self::place) and [`record`](Self::record) —
    /// including ones on scratch clones of this board, which share the
    /// handle — emits a `Placement` event with the slot that was chosen.
    pub fn set_observer(&mut self, observer: ObserverHandle) {
        self.observer = observer;
    }

    /// Registers a new resource and returns its id.
    pub fn add_resource(&mut self) -> ResourceId {
        let id = ResourceId::new(self.timelines.len());
        self.timelines.push(Timeline::new());
        id
    }

    /// Number of registered resources.
    pub fn resource_count(&self) -> usize {
        self.timelines.len()
    }

    /// Read access to one timeline.
    ///
    /// # Panics
    ///
    /// Panics if `id` is unknown.
    pub fn timeline(&self, id: ResourceId) -> &Timeline {
        &self.timelines[id.index()]
    }

    /// Places `occupant` on `resource` at the earliest feasible start, as
    /// in [`Timeline::place`]. Returns the chosen start, or `None` when it
    /// does not fit by `limit`.
    ///
    /// # Panics
    ///
    /// Panics if `occupant` is already placed (remove it first) or the
    /// resource id is unknown.
    pub fn place(
        &mut self,
        resource: ResourceId,
        occupant: Occupant,
        ready: Nanos,
        duration: Nanos,
        period: Nanos,
        limit: Nanos,
    ) -> Option<Nanos> {
        assert!(
            !self.index.contains_key(&occupant),
            "occupant {occupant} is already placed"
        );
        let start =
            self.timelines[resource.index()].place(occupant, ready, duration, period, limit)?;
        self.index.insert(
            occupant,
            (resource, PeriodicInterval::new(start, duration, period)),
        );
        self.observer.emit(|| Event::Placement {
            occupant: occupant.to_string(),
            resource: resource.index() as u64,
            start: start.as_nanos(),
            duration: duration.as_nanos(),
            period: period.as_nanos(),
            spatial: false,
        });
        Some(start)
    }

    /// Dry-run variant of [`place`](Self::place): the start that would be
    /// chosen, without mutating anything.
    pub fn find_slot(
        &self,
        resource: ResourceId,
        ready: Nanos,
        duration: Nanos,
        period: Nanos,
        limit: Nanos,
    ) -> Option<Nanos> {
        self.timelines[resource.index()].find_slot(ready, duration, period, limit)
    }

    /// Records an occupancy on a *spatial* resource without collision
    /// checking (see [`Timeline::record`]): hardware tasks that execute in
    /// parallel on the same device.
    ///
    /// # Panics
    ///
    /// Panics if `occupant` is already placed or the resource id is
    /// unknown.
    pub fn record(&mut self, resource: ResourceId, occupant: Occupant, interval: PeriodicInterval) {
        assert!(
            !self.index.contains_key(&occupant),
            "occupant {occupant} is already placed"
        );
        self.timelines[resource.index()].record(occupant, interval);
        self.index.insert(occupant, (resource, interval));
        self.observer.emit(|| Event::Placement {
            occupant: occupant.to_string(),
            resource: resource.index() as u64,
            start: interval.start().as_nanos(),
            duration: interval.duration().as_nanos(),
            period: interval.period().as_nanos(),
            spatial: true,
        });
    }

    /// Removes an occupant's placement; returns `true` if it was placed.
    pub fn remove(&mut self, occupant: Occupant) -> bool {
        match self.index.remove(&occupant) {
            Some((resource, _)) => {
                self.timelines[resource.index()].remove(occupant);
                true
            }
            None => false,
        }
    }

    /// The copy-0 window of a placed occupant.
    pub fn window(&self, occupant: Occupant) -> Option<Window> {
        self.index
            .get(&occupant)
            .map(|(_, iv)| Window::new(iv.start(), iv.finish()))
    }

    /// The periodic interval of a placed occupant.
    pub fn interval(&self, occupant: Occupant) -> Option<&PeriodicInterval> {
        self.index.get(&occupant).map(|(_, iv)| iv)
    }

    /// Which resource an occupant is placed on.
    pub fn resource_of(&self, occupant: Occupant) -> Option<ResourceId> {
        self.index.get(&occupant).map(|(r, _)| *r)
    }

    /// Iterates over all placements as `(occupant, resource, interval)`.
    pub fn placements(&self) -> impl Iterator<Item = (Occupant, ResourceId, &PeriodicInterval)> {
        self.index.iter().map(|(o, (r, iv))| (*o, *r, iv))
    }

    /// Total number of placed occupants.
    pub fn placement_count(&self) -> usize {
        self.index.len()
    }

    /// Iterates over the occupants placed on one resource, with their
    /// periodic intervals.
    pub fn occupants_on(
        &self,
        resource: ResourceId,
    ) -> impl Iterator<Item = (Occupant, &PeriodicInterval)> {
        self.index
            .iter()
            .filter(move |(_, (r, _))| *r == resource)
            .map(|(o, (_, iv))| (*o, iv))
    }

    /// Pairwise collision scan of one resource's timeline: every pair of
    /// occupants whose periodic intervals overlap. An exclusive resource
    /// (CPU engine or link) must return an empty list; spatial resources
    /// (HW devices, where [`record`](Self::record) is used) may legitimately
    /// report pairs.
    pub fn collisions(&self, resource: ResourceId) -> Vec<(Occupant, Occupant)> {
        let placed: Vec<(Occupant, &PeriodicInterval)> = self.occupants_on(resource).collect();
        let mut out = Vec::new();
        for (i, (a, iva)) in placed.iter().enumerate() {
            for (b, ivb) in placed.iter().skip(i + 1) {
                if iva.collides(ivb) {
                    out.push((*a, *b));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crusade_model::{GlobalTaskId, GraphId, TaskId};

    fn occ(i: usize) -> Occupant {
        Occupant::Task(GlobalTaskId::new(GraphId::new(0), TaskId::new(i)))
    }

    fn ns(v: u64) -> Nanos {
        Nanos::from_nanos(v)
    }

    #[test]
    fn place_and_lookup() {
        let mut b = ScheduleBoard::new();
        let r0 = b.add_resource();
        let r1 = b.add_resource();
        b.place(r0, occ(0), ns(0), ns(10), ns(100), Nanos::MAX)
            .unwrap();
        b.place(r1, occ(1), ns(0), ns(10), ns(100), Nanos::MAX)
            .unwrap();
        assert_eq!(b.resource_of(occ(0)), Some(r0));
        assert_eq!(b.resource_of(occ(1)), Some(r1));
        assert_eq!(b.window(occ(1)).unwrap().start, ns(0)); // independent resources
        assert_eq!(b.placement_count(), 2);
        assert_eq!(b.resource_count(), 2);
    }

    #[test]
    fn remove_clears_both_indexes() {
        let mut b = ScheduleBoard::new();
        let r0 = b.add_resource();
        b.place(r0, occ(0), ns(0), ns(10), ns(100), Nanos::MAX)
            .unwrap();
        assert!(b.remove(occ(0)));
        assert!(!b.remove(occ(0)));
        assert_eq!(b.window(occ(0)), None);
        assert!(b.timeline(r0).is_empty());
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_placement_panics() {
        let mut b = ScheduleBoard::new();
        let r0 = b.add_resource();
        b.place(r0, occ(0), ns(0), ns(10), ns(100), Nanos::MAX)
            .unwrap();
        let _ = b.place(r0, occ(0), ns(50), ns(10), ns(100), Nanos::MAX);
    }

    #[test]
    fn failed_place_leaves_no_trace() {
        let mut b = ScheduleBoard::new();
        let r0 = b.add_resource();
        b.place(r0, occ(0), ns(0), ns(90), ns(100), Nanos::MAX)
            .unwrap();
        assert_eq!(
            b.place(r0, occ(1), ns(0), ns(20), ns(100), Nanos::MAX),
            None
        );
        assert_eq!(b.window(occ(1)), None);
        assert_eq!(b.placement_count(), 1);
    }
}
