//! Shared state a multi-start exploration portfolio threads through
//! concurrent co-synthesis runs.
//!
//! Three pieces, all lock-free or sharded so portfolio members never
//! serialise on them:
//!
//! * [`CostIncumbent`] — the best (lowest) architecture dollar cost any
//!   audit-clean member has completed with, held in an `AtomicU64`.
//!   Members abort as *dominated* once their partial cost plus a sound
//!   lower bound on the cost still to come strictly exceeds it; because
//!   the comparison is strict and architecture cost only grows during
//!   allocation, a member that would end at the minimum cost can never
//!   observe the abort condition — which is what keeps the portfolio
//!   reduction deterministic under any thread schedule.
//! * [`EvalCache`] — a sharded negative cache of allocation attempts,
//!   keyed by the hash chain of the run's committed decisions (the
//!   cluster prefix) and the candidate target. Two members that share a
//!   decision prefix face byte-identical schedule boards, so a candidate
//!   that failed once can be skipped without re-scheduling.
//! * a cancellation flag checked at every allocation step, so a caller
//!   can stop a whole portfolio early.
//!
//! [`PortfolioHooks`] bundles the three for
//! [`crate::CoSynthesis::with_portfolio_hooks`].

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

use crate::policy::splitmix64;

/// The best known architecture cost across a portfolio (dollar amount).
///
/// Starts at `u64::MAX` ("no incumbent"), monotonically decreases.
#[derive(Debug, Default)]
pub struct CostIncumbent(AtomicU64);

impl CostIncumbent {
    /// A fresh incumbent with no bound installed.
    pub fn new() -> Self {
        CostIncumbent(AtomicU64::new(u64::MAX))
    }

    /// Lowers the incumbent to `cost` if it improves on the best known.
    pub fn observe(&self, cost: u64) {
        self.0.fetch_min(cost, Ordering::AcqRel);
    }

    /// The current bound (`u64::MAX` when nothing completed yet).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// Number of shards in an [`EvalCache`]; a power of two so the shard
/// index is a mask of the key's low bits.
const SHARDS: usize = 64;

/// Sharded negative cache of allocation attempts shared by a portfolio.
///
/// Stores 128-bit keys of *(decision-prefix hash, cluster, candidate
/// target)* triples whose scheduling attempt failed. Soundness rests on
/// the attempt being a pure function of the committed decision history:
/// an identical prefix reproduces an identical schedule board, so the
/// attempt fails again. Hits therefore only skip provably dead work and
/// can never change which candidate a run commits.
#[derive(Debug)]
pub struct EvalCache {
    shards: Vec<RwLock<HashSet<u128>>>,
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        EvalCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashSet::new())).collect(),
            hits: AtomicU64::new(0),
            lookups: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u128) -> &RwLock<HashSet<u128>> {
        #[allow(clippy::cast_possible_truncation)] // masked to SHARDS
        &self.shards[(key as u64 as usize) & (SHARDS - 1)]
    }

    /// Whether the keyed attempt is a known failure. Counts the lookup
    /// (and the hit) for [`stats`](Self::stats). A poisoned shard is
    /// treated as a miss — the cache is an accelerator, never load-bearing.
    pub fn known_failure(&self, key: u128) -> bool {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let hit = self
            .shard(key)
            .read()
            .map(|s| s.contains(&key))
            .unwrap_or(false);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Records a failed attempt.
    pub fn record_failure(&self, key: u128) {
        if let Ok(mut s) = self.shard(key).write() {
            s.insert(key);
        }
    }

    /// `(hits, lookups)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.lookups.load(Ordering::Relaxed),
        )
    }

    /// Number of distinct failures recorded.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().map(|g| g.len()).unwrap_or(0))
            .sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Widens a 64-bit decision hash into the cache's 128-bit key space with
/// two independently salted mixes, making accidental collisions between
/// unrelated (prefix, candidate) pairs vanishingly unlikely.
#[must_use]
pub fn cache_key(h: u64) -> u128 {
    let lo = splitmix64(h ^ 0xa076_1d64_78bd_642f);
    let hi = splitmix64(h ^ 0xe703_7ed1_a0b4_28db);
    (u128::from(hi) << 64) | u128::from(lo)
}

/// Everything a portfolio member shares with its siblings, borrowed for
/// the duration of one [`crate::CoSynthesis::run`].
#[derive(Debug, Clone, Copy)]
pub struct PortfolioHooks<'s> {
    /// Best known audit-clean cost; runs abort as dominated against it.
    pub incumbent: &'s CostIncumbent,
    /// Shared negative evaluation cache (`None` disables caching).
    pub cache: Option<&'s EvalCache>,
    /// Cooperative cancellation, checked at every allocation step.
    pub cancel: &'s AtomicBool,
}

impl<'s> PortfolioHooks<'s> {
    /// Whether the portfolio has been cancelled.
    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incumbent_monotone() {
        let inc = CostIncumbent::new();
        assert_eq!(inc.get(), u64::MAX);
        inc.observe(500);
        inc.observe(700);
        assert_eq!(inc.get(), 500);
        inc.observe(300);
        assert_eq!(inc.get(), 300);
    }

    #[test]
    fn cache_round_trip_and_stats() {
        let cache = EvalCache::new();
        let k = cache_key(12345);
        assert!(!cache.known_failure(k));
        cache.record_failure(k);
        assert!(cache.known_failure(k));
        assert!(!cache.known_failure(cache_key(54321)));
        let (hits, lookups) = cache.stats();
        assert_eq!((hits, lookups), (1, 3));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn cache_keys_diverge() {
        assert_ne!(cache_key(1), cache_key(2));
        // The two salted halves must not collapse to the same word.
        #[allow(clippy::cast_possible_truncation)]
        let (lo, hi) = (cache_key(0) as u64, (cache_key(0) >> 64) as u64);
        assert_ne!(lo, hi);
    }

    #[test]
    fn cache_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EvalCache>();
        assert_send_sync::<CostIncumbent>();
        assert_send_sync::<PortfolioHooks<'_>>();
    }
}
