//! Mutation self-tests of the auditor: corrupt one invariant of a
//! known-good architecture through the public board/architecture API and
//! assert the auditor reports exactly that violation class. This is the
//! evidence that a clean audit means something — each check provably
//! fires on the defect it claims to catch.

// Test code: helpers unwrap and cast freely on controlled inputs.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use crusade_core::{CoSynthesis, CosynOptions, SynthesisResult};
use crusade_model::{GlobalTaskId, HwDemand, Nanos, SystemSpec};
use crusade_sched::{Occupant, PeriodicInterval};
use crusade_verify::audit;
use crusade_workloads::{paper_examples, paper_library, PaperLibrary};

struct Fixture {
    lib: PaperLibrary,
    spec: SystemSpec,
    options: CosynOptions,
    result: SynthesisResult,
}

fn fixture(options: CosynOptions) -> Fixture {
    let lib = paper_library();
    let spec = paper_examples()[0].build(&lib);
    let result = CoSynthesis::new(&spec, &lib.lib)
        .with_options(options.clone())
        .run()
        .expect("A1TR synthesis");
    Fixture {
        lib,
        spec,
        options,
        result,
    }
}

impl Fixture {
    fn kinds(&self) -> Vec<&'static str> {
        audit(&self.spec, &self.lib.lib, &self.options, &self.result)
            .iter()
            .map(|v| v.kind())
            .collect()
    }

    fn assert_catches(&self, expected: &str) {
        let kinds = self.kinds();
        assert!(
            kinds.contains(&expected),
            "auditor missed the injected {expected}; reported: {kinds:?}"
        );
    }

    /// Moves a placed occupant to a new start on its own resource,
    /// keeping duration and period.
    fn shift_to(&mut self, occ: Occupant, start: Nanos) {
        let board = &mut self.result.architecture.board;
        let resource = board.resource_of(occ).expect("occupant placed");
        let iv = *board.interval(occ).expect("occupant placed");
        board.remove(occ);
        board.record(
            resource,
            occ,
            PeriodicInterval::new(start, iv.duration(), iv.period()),
        );
    }
}

#[test]
fn unplaced_task_is_caught() {
    let mut f = fixture(CosynOptions::without_reconfiguration());
    let victim = f
        .result
        .architecture
        .board
        .placements()
        .find_map(|(o, _, _)| match o {
            Occupant::Task(_) => Some(o),
            _ => None,
        })
        .expect("at least one placed task");
    f.result.architecture.board.remove(victim);
    f.assert_catches("missing-placement");
}

#[test]
fn late_finish_is_caught() {
    let mut f = fixture(CosynOptions::without_reconfiguration());
    // A sink task (no successors) can be moved late without disturbing
    // downstream precedence, so the deadline check fires in isolation.
    let mut victim = None;
    'outer: for (g, graph) in f.spec.graphs() {
        for (t, _) in graph.tasks() {
            if graph.successors(t).next().is_none() && graph.effective_deadline(t).is_some() {
                victim = Some((Occupant::Task(GlobalTaskId::new(g, t)), {
                    graph.est() + graph.effective_deadline(t).unwrap()
                }));
                break 'outer;
            }
        }
    }
    let (occ, absolute_deadline) = victim.expect("a sink task with a deadline");
    f.shift_to(occ, absolute_deadline); // finish = deadline + duration > deadline
    f.assert_catches("deadline-miss");
}

#[test]
fn early_consumer_is_caught() {
    let mut f = fixture(CosynOptions::without_reconfiguration());
    // Any consumer moved to time zero starts before its input: the
    // producer's finish (and any transfer window) is strictly positive.
    let (g, graph) = f.spec.graphs().next().expect("a graph");
    let (_, edge) = graph.edges().next().expect("an edge");
    let occ = Occupant::Task(GlobalTaskId::new(g, edge.to));
    f.shift_to(occ, Nanos::ZERO);
    f.assert_catches("precedence-violated");
}

#[test]
fn cpu_double_booking_is_caught() {
    let mut f = fixture(CosynOptions::without_reconfiguration());
    // Find a CPU engine hosting at least two tasks and pile the second
    // onto the first's slot.
    let mut found = None;
    for (_, pe) in f.result.architecture.pes() {
        if !matches!(f.lib.lib.pe(pe.ty).class(), crusade_model::PeClass::Cpu(_)) {
            continue;
        }
        let tasks: Vec<(Occupant, PeriodicInterval)> = f
            .result
            .architecture
            .board
            .occupants_on(pe.resource)
            .filter(|(o, _)| matches!(o, Occupant::Task(_)))
            .map(|(o, iv)| (o, *iv))
            .collect();
        if tasks.len() >= 2 {
            found = Some((tasks[0].1.start(), tasks[1].0));
            break;
        }
    }
    let (start, victim) = found.expect("a CPU with two resident tasks");
    f.shift_to(victim, start);
    f.assert_catches("resource-collision");
}

#[test]
fn overlapping_images_are_caught() {
    let mut f = fixture(CosynOptions::default());
    // On a merged device, drag a task of image 1 into the activity span
    // of image 0: the re-derived envelopes now collide.
    let mut mutation = None;
    'outer: for (_, pe) in f.result.architecture.pes() {
        if pe.modes.len() < 2 {
            continue;
        }
        let (m0, m1) = (&pe.modes[0], &pe.modes[1]);
        for &c1 in &m1.clusters {
            let k1 = f.result.clustering.cluster(c1);
            if m0.graphs.contains(&k1.graph) {
                continue; // shared graph: exempt from disjointness
            }
            for &c0 in &m0.clusters {
                let k0 = f.result.clustering.cluster(c0);
                if m1.graphs.contains(&k0.graph) {
                    continue;
                }
                let board = &f.result.architecture.board;
                let victim = Occupant::Task(GlobalTaskId::new(k1.graph, k1.tasks[0]));
                let anchor = Occupant::Task(GlobalTaskId::new(k0.graph, k0.tasks[0]));
                if let (Some(_), Some(w)) = (board.window(victim), board.window(anchor)) {
                    mutation = Some((victim, w.start));
                    break 'outer;
                }
            }
        }
    }
    let (victim, start) = mutation.expect("a merged device with unshared graphs");
    f.shift_to(victim, start);
    f.assert_catches("modes-overlap");
}

#[test]
fn stale_hw_bookkeeping_is_caught() {
    let mut f = fixture(CosynOptions::default());
    let victim = f
        .result
        .architecture
        .pes()
        .find_map(|(pid, pe)| {
            pe.modes
                .iter()
                .position(|m| m.used_hw != HwDemand::ZERO)
                .map(|m| (pid, m))
        })
        .expect("a mode with nonzero hardware demand");
    f.result.architecture.pe_mut(victim.0).modes[victim.1].used_hw = HwDemand::ZERO;
    f.assert_catches("mode-bookkeeping");
}

#[test]
fn dropped_interface_is_caught() {
    let mut f = fixture(CosynOptions::default());
    assert!(
        f.result.architecture.interface.is_some(),
        "reconfiguration synthesis should pick an interface"
    );
    f.result.architecture.interface = None;
    f.assert_catches("interface-missing");
}

#[test]
fn replicated_cluster_is_caught() {
    let mut f = fixture(CosynOptions::without_reconfiguration());
    let mut homes = f.result.architecture.pes().filter_map(|(pid, pe)| {
        pe.modes
            .first()
            .and_then(|m| m.clusters.first().copied())
            .map(|c| (pid, c))
    });
    let (_, stolen) = homes.next().expect("a populated device");
    let (thief, _) = homes.next().expect("a second populated device");
    drop(homes);
    f.result.architecture.pe_mut(thief).modes[0]
        .clusters
        .push(stolen);
    f.assert_catches("cluster-replicated");
}

#[test]
fn untouched_architecture_audits_clean() {
    let f = fixture(CosynOptions::default());
    assert_eq!(f.kinds(), Vec::<&str>::new());
}
