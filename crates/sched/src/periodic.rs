//! Periodic busy intervals and exact collision arithmetic.
//!
//! A task (or message) of a task graph with period *P* that is scheduled at
//! offset *s* for duration *d* occupies its processing element during
//! `[s + kP, s + kP + d)` for every activation *k* of the hyperperiod. The
//! paper's *association array* avoids materialising the Γ ÷ P copies of
//! each task; this module goes one step further and reasons about the
//! entire (bi-infinite) periodic occupancy pattern in O(1) using gcd
//! arithmetic, which is exact for the steady-state schedule because every
//! period divides the hyperperiod.
//!
//! The key fact: two periodic intervals `(s, d, P)` and `(s', d', P')`
//! overlap for *some* pair of activations iff, with `g = gcd(P, P')` and
//! `r = (s' − s) mod g`, either `r < d` or `g − r < d'`.

use serde::{Deserialize, Serialize};

use crusade_model::Nanos;

/// A periodically repeating half-open busy interval `[start + k·period,
/// start + k·period + duration)`.
///
/// # Examples
///
/// ```
/// use crusade_model::Nanos;
/// use crusade_sched::PeriodicInterval;
///
/// let a = PeriodicInterval::new(Nanos::from_nanos(0), Nanos::from_nanos(30), Nanos::from_nanos(100));
/// let b = PeriodicInterval::new(Nanos::from_nanos(50), Nanos::from_nanos(30), Nanos::from_nanos(100));
/// assert!(!a.collides(&b)); // [0,30) and [50,80) per 100 never meet
///
/// let c = PeriodicInterval::new(Nanos::from_nanos(20), Nanos::from_nanos(30), Nanos::from_nanos(100));
/// assert!(a.collides(&c)); // [0,30) overlaps [20,50)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeriodicInterval {
    start: Nanos,
    duration: Nanos,
    period: Nanos,
}

impl PeriodicInterval {
    /// Creates a periodic interval.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero, if `duration` is zero, or if the
    /// duration exceeds the period (utilisation above one on a single
    /// resource can never be scheduled).
    pub fn new(start: Nanos, duration: Nanos, period: Nanos) -> Self {
        assert!(!period.is_zero(), "period must be nonzero");
        assert!(!duration.is_zero(), "duration must be nonzero");
        assert!(
            duration <= period,
            "duration {duration} exceeds period {period}"
        );
        PeriodicInterval {
            start,
            duration,
            period,
        }
    }

    /// Offset of the first occurrence.
    #[inline]
    pub fn start(&self) -> Nanos {
        self.start
    }

    /// Busy duration of each occurrence.
    #[inline]
    pub fn duration(&self) -> Nanos {
        self.duration
    }

    /// Finish instant of the first occurrence.
    #[inline]
    pub fn finish(&self) -> Nanos {
        self.start + self.duration
    }

    /// Repetition period.
    #[inline]
    pub fn period(&self) -> Nanos {
        self.period
    }

    /// Whether any occurrence of `self` overlaps any occurrence of
    /// `other`, over the whole (bi-infinite) periodic pattern.
    pub fn collides(&self, other: &PeriodicInterval) -> bool {
        let g = crusade_model::hyperperiod::gcd(self.period, other.period);
        let d = self.duration.as_nanos();
        let d2 = other.duration.as_nanos();
        let g_ns = g.as_nanos();
        if d + d2 > g_ns {
            // The two patterns cannot avoid each other at all.
            return true;
        }
        let r = signed_mod(
            other.start.as_nanos() as i128 - self.start.as_nanos() as i128,
            g_ns,
        );
        r < d || g_ns - r < d2
    }

    /// The earliest start `t ≥ from` at which an interval of `self`'s
    /// duration and period would *not* collide with `other`, or `None` if
    /// no such offset exists (the durations jointly exceed `gcd` of the
    /// periods, so every offset collides).
    ///
    /// Used by the timeline's first-fit search: when a candidate start
    /// collides, this computes the next start worth trying against this
    /// particular occupant.
    pub fn earliest_clear(&self, other: &PeriodicInterval, from: Nanos) -> Option<Nanos> {
        let probe = PeriodicInterval {
            start: from,
            ..*self
        };
        if !probe.collides(other) {
            return Some(from);
        }
        let g = crusade_model::hyperperiod::gcd(self.period, other.period).as_nanos();
        let d = self.duration.as_nanos();
        let d2 = other.duration.as_nanos();
        if d + d2 > g {
            return None;
        }
        // r(t) = (other.start − t) mod g decreases by one as t increases by
        // one; we need r ∈ [d2 … g − d]: the gap after `other`'s occurrence.
        //
        // Derivation: `probe` at start t collides iff r' = (s' − t) mod g
        // satisfies r' > g − d2 (tail of other ahead of us) or r' < ...
        // — equivalently, relative offset of other w.r.t. t must leave
        // [t, t+d) clear, i.e. (s' − t) mod g ∈ [d ... g − d2] must *fail*;
        // wait: collision iff r < d_other_side. Work with
        // r = (s' − t) mod g and the collision predicate from `collides`
        // with roles (self=probe at t): collide iff r < d? No: `collides`
        // computes r = (other.start − self.start) mod g and tests
        // r < self.duration || g − r < other.duration. We need the smallest
        // x ≥ 0 with r(from + x) ∉ collision region, where
        // r(from + x) = (r0 − x) mod g and the clear region is
        // [d, g − d2].
        let r0 = signed_mod(other.start.as_nanos() as i128 - from.as_nanos() as i128, g);
        debug_assert!(r0 < d || g - r0 < d2);
        let x = if r0 > g - d2 {
            // Decrease r down to the top of the clear region, g − d2.
            r0 - (g - d2)
        } else {
            // r0 < d: decrease past zero, wrapping to g − 1, down to g − d2.
            r0 + d2
        };
        Some(from + Nanos::from_nanos(x))
    }
}

/// `v mod m` with a non-negative result, for possibly-negative `v`.
fn signed_mod(v: i128, m: u64) -> u64 {
    let m = m as i128;
    // The double-mod result is in [0, m), which fits u64 by construction.
    #[allow(clippy::cast_possible_truncation)]
    {
        (((v % m) + m) % m) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pi(start: u64, dur: u64, period: u64) -> PeriodicInterval {
        PeriodicInterval::new(
            Nanos::from_nanos(start),
            Nanos::from_nanos(dur),
            Nanos::from_nanos(period),
        )
    }

    #[test]
    fn same_period_disjoint_offsets() {
        let a = pi(0, 10, 100);
        assert!(!a.collides(&pi(10, 10, 100)));
        assert!(!a.collides(&pi(90, 10, 100)));
        assert!(a.collides(&pi(95, 10, 100))); // wraps into [0,5)
        assert!(a.collides(&pi(5, 10, 100)));
        assert!(a.collides(&pi(0, 10, 100)));
    }

    #[test]
    fn harmonic_periods() {
        // a runs [0,10) every 50; b runs [20,30) every 100 -> never meet.
        let a = pi(0, 10, 50);
        let b = pi(20, 10, 100);
        assert!(!a.collides(&b));
        // c runs [55,65) every 100: its offset mod 50 is 5 -> overlaps a.
        let c = pi(55, 10, 100);
        assert!(a.collides(&c));
        assert!(c.collides(&a)); // symmetry
    }

    #[test]
    fn coprime_like_periods_with_tight_gcd() {
        // periods 60 and 90: gcd 30. durations 20 and 15 sum to 35 > 30:
        // unavoidable collision whatever the offsets.
        let a = pi(0, 20, 60);
        let b = pi(25, 15, 90);
        assert!(a.collides(&b));
        // durations 10 and 10 sum to 20 <= 30: offsets decide.
        let a = pi(0, 10, 60);
        let b = pi(10, 10, 90);
        assert!(!a.collides(&b)); // r = 10, clear region [10, 20]
        let c = pi(5, 10, 90);
        assert!(a.collides(&c));
    }

    #[test]
    fn collision_matches_naive_unrolling() {
        // Exhaustive cross-check against explicit copy enumeration over the
        // hyperperiod for a grid of cases.
        for &(s1, d1, p1, s2, d2, p2) in &[
            (0u64, 3u64, 12u64, 5u64, 2u64, 18u64),
            (1, 4, 12, 7, 3, 8),
            (0, 2, 6, 3, 2, 10),
            (2, 5, 20, 9, 5, 15),
            (0, 1, 4, 2, 1, 6),
            (3, 3, 9, 3, 3, 12),
        ] {
            let a = pi(s1, d1, p1);
            let b = pi(s2, d2, p2);
            let gamma = (p1
                / crusade_model::hyperperiod::gcd(Nanos::from_nanos(p1), Nanos::from_nanos(p2))
                    .as_nanos())
                * p2;
            let mut naive = false;
            'outer: for k in 0..(gamma / p1) {
                for k2 in 0..(gamma / p2) {
                    // Compare within one hyperperiod window, with wraparound
                    // handled by also checking shifted copies.
                    for shift in [0i128, gamma as i128, -(gamma as i128)] {
                        let a0 = (s1 + k * p1) as i128;
                        let b0 = (s2 + k2 * p2) as i128 + shift;
                        if a0 < b0 + d2 as i128 && b0 < a0 + d1 as i128 {
                            naive = true;
                            break 'outer;
                        }
                    }
                }
            }
            assert_eq!(
                a.collides(&b),
                naive,
                "mismatch for ({s1},{d1},{p1}) vs ({s2},{d2},{p2})"
            );
        }
    }

    #[test]
    fn earliest_clear_returns_noncolliding_start() {
        let occupied = pi(0, 30, 100);
        let probe = pi(0, 20, 100);
        let t = probe
            .earliest_clear(&occupied, Nanos::from_nanos(5))
            .unwrap();
        assert_eq!(t, Nanos::from_nanos(30));
        let placed = pi(t.as_nanos(), 20, 100);
        assert!(!placed.collides(&occupied));
    }

    #[test]
    fn earliest_clear_already_clear_is_identity() {
        let occupied = pi(0, 30, 100);
        let probe = pi(0, 20, 100);
        assert_eq!(
            probe.earliest_clear(&occupied, Nanos::from_nanos(40)),
            Some(Nanos::from_nanos(40))
        );
    }

    #[test]
    fn earliest_clear_wraps_past_zero() {
        // Occupied tail [90,100) wrapping; probe of 20 starting at 85
        // collides; next clear start is 0 mod 100... i.e. x = r0 + d2.
        let occupied = pi(90, 10, 100);
        let probe = pi(0, 20, 100);
        let t = probe
            .earliest_clear(&occupied, Nanos::from_nanos(85))
            .unwrap();
        let placed = pi(t.as_nanos(), 20, 100);
        assert!(!placed.collides(&occupied));
        assert!(t >= Nanos::from_nanos(85));
    }

    #[test]
    fn earliest_clear_impossible() {
        // gcd 10, durations 6 + 6 = 12 > 10: no offset works.
        let occupied = pi(0, 6, 20);
        let probe = pi(0, 6, 30);
        assert!(probe.earliest_clear(&occupied, Nanos::ZERO).is_none());
        assert!(probe.collides(&occupied));
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn duration_beyond_period_rejected() {
        let _ = pi(0, 101, 100);
    }

    #[test]
    fn full_period_occupancy_collides_with_everything() {
        let hog = pi(0, 100, 100);
        assert!(hog.collides(&pi(37, 1, 300)));
    }
}
