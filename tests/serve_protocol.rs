//! Wire-protocol tests for `crusade-serve`: every DTO must survive a
//! serde round-trip byte-for-byte, and every malformed input — unknown
//! fields, truncated frames, oversized specs, wrong versions, unknown
//! commands — must come back as a typed [`ProtocolError`], never a
//! panic.

// Test code: unwraps freely on values it just constructed.
#![allow(clippy::unwrap_used)]

use crusade_model::{GraphId, Nanos, SpecDelta};
use crusade_obs::Event;
use crusade_serve::{
    decode_request, decode_response, encode_frame, DrainReport, JobEvent, JobRef, JobResult,
    JobStatus, ProtocolError, ProtocolErrorKind, Request, RequestBody, Response, ResponseBody,
    ResynRequest, ResynResult, ResynStep, ServerStats, ShutdownRequest, SpecPayload, StatsRequest,
    SubmitRequest, DEFAULT_MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crusade_workloads::motivating_example;

fn sample_payload() -> SpecPayload {
    let (library, spec) = motivating_example();
    SpecPayload { library, spec }
}

fn request(body: RequestBody) -> Request {
    Request {
        v: PROTOCOL_VERSION,
        client: "proto-test".to_string(),
        body,
    }
}

/// Encodes a request and strictly decodes it back; the round trip must
/// be lossless.
fn roundtrip_request(req: &Request) {
    let line = encode_frame(req).unwrap();
    assert!(line.ends_with('\n'), "frame is not newline-terminated");
    let decoded = decode_request(line.trim_end(), DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(&decoded, req);
}

fn roundtrip_response(resp: &Response) {
    let line = encode_frame(resp).unwrap();
    let decoded = decode_response(line.trim_end()).unwrap();
    assert_eq!(&decoded, resp);
}

fn sample_result() -> JobResult {
    JobResult {
        job: 7,
        fingerprint: "00deadbeef00cafe".to_string(),
        cached: false,
        coalesced: true,
        cost: 1234,
        policy: 3,
        pes: 4,
        links: 2,
        multi_mode_devices: 1,
        audit_clean: true,
        queue_ms: 1.5,
        run_ms: 250.0,
    }
}

#[test]
fn every_request_variant_round_trips() {
    let payload = sample_payload();
    let requests = [
        request(RequestBody::Submit(SubmitRequest {
            payload: payload.clone(),
            portfolio: 4,
            reconfiguration: true,
            stream: true,
        })),
        request(RequestBody::Status(JobRef { job: 3 })),
        request(RequestBody::Cancel(JobRef { job: u64::MAX })),
        request(RequestBody::Resyn(ResynRequest {
            payload,
            deltas: vec![SpecDelta::TightenDeadline {
                graph: GraphId::new(0),
                deadline: Nanos::from_nanos(900),
            }],
            portfolio: 2,
            reconfiguration: false,
        })),
        request(RequestBody::Stats(StatsRequest {})),
        request(RequestBody::Shutdown(ShutdownRequest {})),
    ];
    for req in &requests {
        roundtrip_request(req);
    }
}

#[test]
fn every_response_variant_round_trips() {
    let status = JobStatus {
        job: 7,
        state: "done".to_string(),
        detail: String::new(),
        result: Some(sample_result()),
    };
    let responses = [
        Response::new(ResponseBody::Event(JobEvent {
            job: 7,
            seq: 0,
            event: Event::SpanOpen {
                span: 1,
                phase: "clustering".to_string(),
            },
        })),
        Response::new(ResponseBody::Result(sample_result())),
        Response::new(ResponseBody::Status(status.clone())),
        Response::new(ResponseBody::Cancelled(JobStatus {
            state: "cancelled".to_string(),
            result: None,
            ..status
        })),
        Response::new(ResponseBody::Resyn(ResynResult {
            job: 8,
            fingerprint: "0123456789abcdef".to_string(),
            incumbent_cached: true,
            incumbent_cost: 1000,
            final_cost: 1100,
            degraded: false,
            steps: vec![ResynStep {
                index: 0,
                kind: "TightenDeadline".to_string(),
                rung: "warm".to_string(),
                cost: 1100,
            }],
            audit_clean: true,
        })),
        Response::new(ResponseBody::Stats(ServerStats {
            submitted: 10,
            completed: 8,
            cache_hits: 5,
            cache_misses: 3,
            coalesced: 2,
            queue_len: 1,
            running: 1,
            draining: false,
            ..ServerStats::default()
        })),
        Response::new(ResponseBody::ShuttingDown(DrainReport {
            drained: 2,
            cancelled: 1,
        })),
        Response::error(ProtocolErrorKind::QueueFull, "queue is full"),
    ];
    for resp in &responses {
        roundtrip_response(resp);
    }
}

fn kind_of(line: &str) -> ProtocolErrorKind {
    decode_request(line, DEFAULT_MAX_FRAME_BYTES)
        .expect_err("malformed frame decoded successfully")
        .kind
}

#[test]
fn garbage_and_truncated_frames_are_malformed() {
    assert_eq!(kind_of(""), ProtocolErrorKind::MalformedFrame);
    assert_eq!(kind_of("not json"), ProtocolErrorKind::MalformedFrame);
    assert_eq!(kind_of("[1, 2, 3]"), ProtocolErrorKind::MalformedFrame);
    assert_eq!(kind_of("null"), ProtocolErrorKind::MalformedFrame);
    // A real frame cut mid-way: the JSON parser must reject it.
    let line = encode_frame(&request(RequestBody::Stats(StatsRequest {}))).unwrap();
    let truncated = &line[..line.len() / 2];
    assert_eq!(kind_of(truncated), ProtocolErrorKind::MalformedFrame);
}

#[test]
fn unknown_fields_are_rejected_not_ignored() {
    // The vendored serde silently ignores unknown keys; the strict
    // decoder must not.
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":{"Stats":{}},"extra":0}"#),
        ProtocolErrorKind::UnknownField
    );
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":{"Status":{"job":1,"extra":0}}}"#),
        ProtocolErrorKind::UnknownField
    );
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":{"Shutdown":{"force":true}}}"#),
        ProtocolErrorKind::UnknownField
    );
}

#[test]
fn missing_fields_are_malformed() {
    assert_eq!(
        kind_of(r#"{"client":"t","body":{"Stats":{}}}"#),
        ProtocolErrorKind::MalformedFrame
    );
    assert_eq!(
        kind_of(r#"{"v":1,"body":{"Stats":{}}}"#),
        ProtocolErrorKind::MalformedFrame
    );
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":{"Status":{}}}"#),
        ProtocolErrorKind::MalformedFrame
    );
}

#[test]
fn version_mismatch_is_typed() {
    assert_eq!(
        kind_of(r#"{"v":2,"client":"t","body":{"Stats":{}}}"#),
        ProtocolErrorKind::VersionMismatch
    );
    assert_eq!(
        kind_of(r#"{"v":"1","client":"t","body":{"Stats":{}}}"#),
        ProtocolErrorKind::VersionMismatch
    );
    assert_eq!(
        kind_of(r#"{"v":0,"client":"t","body":{"Stats":{}}}"#),
        ProtocolErrorKind::VersionMismatch
    );
}

#[test]
fn unknown_commands_and_bad_bodies_are_typed() {
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":{"Explode":{}}}"#),
        ProtocolErrorKind::UnknownCommand
    );
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":{}}"#),
        ProtocolErrorKind::MalformedFrame
    );
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":{"Stats":{},"Shutdown":{}}}"#),
        ProtocolErrorKind::MalformedFrame
    );
    assert_eq!(
        kind_of(r#"{"v":1,"client":"t","body":7}"#),
        ProtocolErrorKind::MalformedFrame
    );
}

#[test]
fn oversized_frames_are_refused_before_parsing() {
    // An oversized spec must be refused by the byte cap alone — even
    // though the frame is perfectly valid JSON.
    let line = encode_frame(&request(RequestBody::Submit(SubmitRequest {
        payload: sample_payload(),
        portfolio: 1,
        reconfiguration: true,
        stream: false,
    })))
    .unwrap();
    let err = decode_request(line.trim_end(), 64).expect_err("oversized frame accepted");
    assert_eq!(err.kind, ProtocolErrorKind::FrameTooLarge);
}

#[test]
fn hostile_inputs_never_panic() {
    // A grab-bag of adversarial frames: each must produce a typed error,
    // and none may panic (the test passing at all is the property).
    let corpus = [
        "{",
        "}",
        "\"",
        "{\"v\":1e309}",
        "{\"v\":-1,\"client\":\"t\",\"body\":{\"Stats\":{}}}",
        "{\"v\":1,\"client\":42,\"body\":{\"Stats\":{}}}",
        "{\"v\":1,\"client\":\"t\",\"body\":{\"Submit\":null}}",
        "{\"v\":1,\"client\":\"t\",\"body\":[\"Stats\"]}",
        "\u{0}\u{1}\u{2}",
        "{\"v\":1,\"client\":\"t\",\"body\":{\"Submit\":{\"payload\":0,\"portfolio\":-1,\
         \"reconfiguration\":2,\"stream\":\"yes\"}}}",
    ];
    for line in corpus {
        let err: ProtocolError =
            decode_request(line, DEFAULT_MAX_FRAME_BYTES).expect_err("hostile frame accepted");
        assert!(!err.kind.as_str().is_empty());
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn client_side_response_decoding_is_versioned() {
    assert_eq!(
        decode_response("garbage").unwrap_err().kind,
        ProtocolErrorKind::MalformedFrame
    );
    let stale = r#"{"v":99,"body":{"Stats":{"submitted":0,"completed":0,"cancelled":0,"failed":0,"cache_hits":0,"cache_misses":0,"coalesced":0,"rejected":0,"queue_len":0,"running":0,"draining":false}}}"#;
    assert_eq!(
        decode_response(stale).unwrap_err().kind,
        ProtocolErrorKind::VersionMismatch
    );
}

#[test]
fn fingerprints_are_stable_across_encoding() {
    // The cache key is derived from canonical JSON; encoding a payload
    // and fingerprinting the decoded copy must agree with the original.
    let payload = sample_payload();
    let a = crusade_serve::fingerprint(&payload, 8, true).unwrap();
    let line = encode_frame(&payload).unwrap();
    let b: SpecPayload = serde_json::from_str(line.trim_end()).unwrap();
    assert_eq!(a, crusade_serve::fingerprint(&b, 8, true).unwrap());
    assert_eq!(a.len(), 16, "fingerprint is not 16 hex digits");
    assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
}
