//! The association array (adopted from COSYN).
//!
//! In traditional real-time computing theory, a task graph with period *P*
//! contributes Γ ÷ *P* copies to the hyperperiod Γ, and every copy's
//! deadline must be verified — impractical in both CPU time and memory for
//! multi-rate specifications where the ratio is large (the paper's examples
//! mix 25 µs and 1 min periods: 2.4 million copies). The association array
//! instead records, per task graph, the copy count and the rule that copy
//! *k* of an entity scheduled at offset *s* occupies `s + k·P`.
//!
//! Combined with the periodic-interval collision arithmetic of
//! [`crate::PeriodicInterval`], a schedule computed for copy 0 is valid for
//! every copy, so the array never needs to be materialised. This module
//! keeps the bookkeeping type (used for reporting and for the naive
//! cross-check in tests).

use serde::{Deserialize, Serialize};

use crusade_model::{hyperperiod, GraphId, Nanos, SystemSpec, ValidateSpecError};

/// Per-graph copy bookkeeping over one hyperperiod.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssociationEntry {
    /// The graph this entry describes.
    pub graph: GraphId,
    /// The graph's period.
    pub period: Nanos,
    /// The graph's earliest start time.
    pub est: Nanos,
    /// Number of copies in one hyperperiod (Γ ÷ period).
    pub copies: u64,
}

impl AssociationEntry {
    /// Release instant of copy `k` (the EST of that activation).
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.copies`.
    pub fn release(&self, k: u64) -> Nanos {
        assert!(k < self.copies, "copy index out of range");
        self.est + self.period * k
    }

    /// Translates a copy-0 instant to the corresponding copy-`k` instant.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.copies`.
    pub fn instant(&self, copy0_instant: Nanos, k: u64) -> Nanos {
        assert!(k < self.copies, "copy index out of range");
        copy0_instant + self.period * k
    }
}

/// The association array for a specification: one entry per task graph.
///
/// # Examples
///
/// ```
/// use crusade_model::{ExecutionTimes, Nanos, SystemSpec, Task, TaskGraphBuilder};
/// use crusade_sched::AssociationArray;
///
/// # fn main() -> Result<(), crusade_model::ValidateSpecError> {
/// let mut fast = TaskGraphBuilder::new("fast", Nanos::from_micros(25));
/// fast.add_task(Task::new("t", ExecutionTimes::uniform(1, Nanos::from_micros(1))));
/// let mut slow = TaskGraphBuilder::new("slow", Nanos::from_micros(100));
/// slow.add_task(Task::new("t", ExecutionTimes::uniform(1, Nanos::from_micros(1))));
/// let spec = SystemSpec::new(vec![fast.build()?, slow.build()?]);
/// let arr = AssociationArray::build(&spec)?;
/// assert_eq!(arr.hyperperiod(), Nanos::from_micros(100));
/// assert_eq!(arr.entry(crusade_model::GraphId::new(0)).copies, 4);
/// assert_eq!(arr.total_copies(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AssociationArray {
    gamma: Nanos,
    entries: Vec<AssociationEntry>,
}

impl AssociationArray {
    /// Builds the array for a specification.
    ///
    /// # Errors
    ///
    /// Propagates hyperperiod computation failures (empty spec, overflow).
    pub fn build(spec: &SystemSpec) -> Result<Self, ValidateSpecError> {
        let gamma = spec.hyperperiod()?;
        let entries = spec
            .graphs()
            .map(|(id, g)| {
                Ok(AssociationEntry {
                    graph: id,
                    period: g.period(),
                    est: g.est(),
                    copies: hyperperiod::copies(gamma, g.period())?,
                })
            })
            .collect::<Result<_, ValidateSpecError>>()?;
        Ok(AssociationArray { gamma, entries })
    }

    /// The hyperperiod Γ.
    pub fn hyperperiod(&self) -> Nanos {
        self.gamma
    }

    /// The entry for one graph.
    ///
    /// # Panics
    ///
    /// Panics if `graph` is out of range.
    pub fn entry(&self, graph: GraphId) -> &AssociationEntry {
        &self.entries[graph.index()]
    }

    /// Iterates over all entries.
    pub fn entries(&self) -> impl Iterator<Item = &AssociationEntry> {
        self.entries.iter()
    }

    /// Total number of task-graph copies across the hyperperiod — the
    /// quantity a naive unrolling approach would have to materialise.
    pub fn total_copies(&self) -> u64 {
        self.entries.iter().map(|e| e.copies).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crusade_model::{ExecutionTimes, Task, TaskGraphBuilder};

    fn spec(periods_us: &[u64]) -> SystemSpec {
        let graphs = periods_us
            .iter()
            .map(|&p| {
                let mut b = TaskGraphBuilder::new(format!("g{p}"), Nanos::from_micros(p));
                b.add_task(Task::new(
                    "t",
                    ExecutionTimes::uniform(1, Nanos::from_micros(1)),
                ));
                b.build().unwrap()
            })
            .collect();
        SystemSpec::new(graphs)
    }

    #[test]
    fn copies_multiply_out() {
        let arr = AssociationArray::build(&spec(&[25, 50, 100])).unwrap();
        assert_eq!(arr.hyperperiod(), Nanos::from_micros(100));
        let copies: Vec<u64> = arr.entries().map(|e| e.copies).collect();
        assert_eq!(copies, vec![4, 2, 1]);
        assert_eq!(arr.total_copies(), 7);
    }

    #[test]
    fn release_instants() {
        let arr = AssociationArray::build(&spec(&[25, 100])).unwrap();
        let e = arr.entry(GraphId::new(0));
        assert_eq!(e.release(0), Nanos::ZERO);
        assert_eq!(e.release(3), Nanos::from_micros(75));
        assert_eq!(e.instant(Nanos::from_micros(7), 2), Nanos::from_micros(57));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn copy_index_bounds_checked() {
        let arr = AssociationArray::build(&spec(&[25, 100])).unwrap();
        let _ = arr.entry(GraphId::new(0)).release(4);
    }

    #[test]
    fn multirate_scale_matches_paper() {
        // 25us against 1 minute: 2.4 million copies that are never
        // materialised.
        let arr = AssociationArray::build(&spec(&[25, 60_000_000])).unwrap();
        assert_eq!(arr.entry(GraphId::new(0)).copies, 2_400_000);
    }
}
