//! Field-upgrade analysis: synthesize new functionality onto *deployed*
//! hardware.
//!
//! Section 3 of the paper motivates reconfigurable architectures with
//! field upgrades: design errors found after release can be fixed, and
//! new features offered, "via simply reconfiguring the FPGAs and CPLDs" —
//! provided the deployed devices have sufficient resources and
//! connectivity. This module answers exactly that question: given the
//! architecture of a shipped system and a *new* specification (the next
//! software/firmware release), can the new specification be hosted on the
//! existing hardware, with no new parts, by re-mapping software and
//! reprogramming the programmable devices (opening new configuration
//! images where temporal sharing permits)?

use crusade_model::{ResourceLibrary, SystemSpec};

use crate::alloc::Allocator;
use crate::arch::Architecture;
use crate::cluster::cluster_tasks_with;
use crate::error::SynthesisError;
use crate::options::CosynOptions;
use crate::synthesis::{SynthesisReport, SynthesisResult};

/// The outcome of a feasible field upgrade.
#[derive(Debug, Clone)]
pub struct UpgradeResult {
    /// The re-synthesized system on the fixed hardware.
    pub synthesis: SynthesisResult,
    /// Configuration images opened beyond one per programmable device.
    pub extra_modes: usize,
}

/// Strips a deployed architecture down to its *hardware shell*: the same
/// PE and link instances (types, attachments) with an empty schedule and
/// empty configuration images, ready to receive a new specification.
pub fn hardware_shell(deployed: &Architecture) -> Architecture {
    let mut shell = Architecture::new();
    let mut pe_map = std::collections::HashMap::new();
    for (old_id, pe) in deployed.pes() {
        let new_id = shell.add_pe(pe.ty);
        pe_map.insert(old_id, new_id);
    }
    for (_, link) in deployed.links() {
        let id = shell.add_link(link.ty);
        let attached: Vec<_> = link
            .attached
            .iter()
            .filter_map(|p| pe_map.get(p).copied())
            .collect();
        shell.link_mut(id).attached = attached;
    }
    shell
}

/// Attempts to host `new_spec` on the deployed architecture without
/// adding hardware.
///
/// Allocation may reuse every existing PE and link and may open new
/// configuration images on programmable devices (verified for reboot room
/// and capacity), but may not instantiate anything. On success the
/// returned schedule meets every deadline of the new specification.
///
/// # Errors
///
/// [`SynthesisError::Unallocatable`] when some cluster of the new
/// specification cannot be hosted — the upgrade requires a hardware
/// change (the paper's criterion for when a field upgrade is *not*
/// possible).
///
/// # Examples
///
/// ```no_run
/// # use crusade_core::{upgrade_in_field, CoSynthesis, CosynOptions};
/// # fn demo(old_spec: &crusade_model::SystemSpec, new_spec: &crusade_model::SystemSpec,
/// #         lib: &crusade_model::ResourceLibrary) {
/// let deployed = CoSynthesis::new(old_spec, lib).run().unwrap();
/// match upgrade_in_field(&deployed.architecture, new_spec, lib, &CosynOptions::default()) {
///     Ok(up) => println!("upgrade ships as firmware: {} new images", up.extra_modes),
///     Err(e) => println!("upgrade needs new hardware: {e}"),
/// }
/// # }
/// ```
pub fn upgrade_in_field(
    deployed: &Architecture,
    new_spec: &SystemSpec,
    lib: &ResourceLibrary,
    options: &CosynOptions,
) -> Result<UpgradeResult, SynthesisError> {
    let t0 = std::time::Instant::now();
    new_spec.validate()?;
    let clustering = cluster_tasks_with(new_spec, lib, options)?;
    let shell = hardware_shell(deployed);
    let mut allocator = Allocator::for_upgrade(new_spec, lib, options, &clustering, shell);
    let cluster_ids: Vec<_> = clustering.clusters().map(|(id, _)| id).collect();
    for cid in cluster_ids {
        allocator.allocate(cid)?;
    }
    let (candidates_tried, candidates_pruned) = allocator.candidate_counters();
    let mut arch = allocator.arch;

    // Drop images that ended up unused (opened speculatively), keeping at
    // least one per device.
    let pe_ids: Vec<_> = arch.pes().map(|(id, _)| id).collect();
    for pid in pe_ids {
        let modes = &mut arch.pe_mut(pid).modes;
        let mut i = 1;
        while i < modes.len() {
            if modes[i].clusters.is_empty() {
                modes.remove(i);
            } else {
                i += 1;
            }
        }
    }
    let extra_modes: usize = arch
        .pes()
        .map(|(_, p)| p.modes.len().saturating_sub(1))
        .sum();

    let multi_mode_devices = arch.pes().filter(|(_, p)| p.modes.len() > 1).count();
    let total_modes = arch.pes().map(|(_, p)| p.modes.len()).sum();
    let report = SynthesisReport {
        pe_count: arch.pe_count(),
        link_count: arch.link_count(),
        cost: arch.cost(lib),
        cpu_time: t0.elapsed(),
        reconfig: Default::default(),
        multi_mode_devices,
        total_modes,
        cluster_count: clustering.cluster_count(),
        candidates_tried,
        candidates_pruned,
    };
    Ok(UpgradeResult {
        synthesis: SynthesisResult {
            architecture: arch,
            clustering,
            report,
        },
        extra_modes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoSynthesis;
    use crusade_model::{
        CpuAttrs, Dollars, ExecutionTimes, HwDemand, LinkClass, LinkType, Nanos, PeClass, PeType,
        PeTypeId, PpeAttrs, PpeKind, Preference, SystemConstraints, Task, TaskGraphBuilder,
    };

    const CPU: usize = 0;
    const FPGA: usize = 1;

    fn library() -> ResourceLibrary {
        let mut lib = ResourceLibrary::new();
        lib.add_pe(PeType::new(
            "cpu",
            Dollars::new(90),
            PeClass::Cpu(CpuAttrs {
                memory_bytes: 4 << 20,
                context_switch: Nanos::from_micros(8),
                comm_ports: 2,
                comm_overlap: true,
            }),
        ));
        lib.add_pe(PeType::new(
            "fpga",
            Dollars::new(250),
            PeClass::Ppe(PpeAttrs {
                kind: PpeKind::Fpga,
                pfus: 1000,
                flip_flops: 2000,
                pins: 160,
                boot_memory_bytes: 20 << 10,
                config_bits_per_pfu: 150,
                partial_reconfig: false,
            }),
        ));
        lib.add_link(LinkType::new(
            "bus",
            Dollars::new(10),
            LinkClass::Bus,
            8,
            vec![Nanos::from_nanos(300)],
            64,
            Nanos::from_micros(1),
        ));
        lib
    }

    fn sw(name: &str, n: usize, exec_us: u64) -> crusade_model::TaskGraph {
        let mut b = TaskGraphBuilder::new(name, Nanos::from_millis(10));
        let mut prev = None;
        for i in 0..n {
            let t = Task::new(
                format!("{name}-{i}"),
                ExecutionTimes::from_entries(
                    2,
                    [(PeTypeId::new(CPU), Nanos::from_micros(exec_us))],
                ),
            );
            let id = b.add_task(t);
            if let Some(p) = prev {
                b.add_edge(p, id, 64);
            }
            prev = Some(id);
        }
        b.deadline(Nanos::from_millis(8)).build().unwrap()
    }

    fn hw(name: &str, est_ms: u64, span_ms: u64, pfus: u32) -> crusade_model::TaskGraph {
        let mut b = TaskGraphBuilder::new(name, Nanos::from_millis(100));
        let mut t = Task::new(
            format!("{name}-hw"),
            ExecutionTimes::from_entries(
                2,
                [(PeTypeId::new(FPGA), Nanos::from_millis(span_ms) / 4)],
            ),
        );
        t.preference = Preference::Only(vec![PeTypeId::new(FPGA)]);
        t.hw = HwDemand::new(0, pfus, pfus, 8);
        b.add_task(t);
        b.est(Nanos::from_millis(est_ms))
            .deadline(Nanos::from_millis(span_ms))
            .build()
            .unwrap()
    }

    fn constraints() -> SystemConstraints {
        SystemConstraints {
            boot_time_requirement: Nanos::from_millis(5),
            preemption_overhead: Nanos::from_micros(50),
            average_link_ports: 2,
        }
    }

    #[test]
    fn shell_preserves_instances_and_links() {
        let lib = library();
        let spec = SystemSpec::new(vec![sw("a", 3, 100), hw("h", 0, 30, 400)])
            .with_constraints(constraints());
        let deployed = CoSynthesis::new(&spec, &lib).run().unwrap();
        let shell = hardware_shell(&deployed.architecture);
        assert_eq!(shell.pe_count(), deployed.architecture.pe_count());
        assert_eq!(shell.link_count(), deployed.architecture.link_count());
        assert_eq!(shell.board.placement_count(), 0);
        for (_, pe) in shell.pes() {
            assert_eq!(pe.modes.len(), 1);
            assert!(pe.modes[0].clusters.is_empty());
        }
    }

    #[test]
    fn compatible_feature_addition_fits_existing_hardware() {
        let lib = library();
        // v1: control software + one early hardware function.
        let v1 = SystemSpec::new(vec![sw("ctl", 4, 100), hw("filt", 0, 30, 400)])
            .with_constraints(constraints());
        let deployed = CoSynthesis::new(&v1, &lib).run().unwrap();
        // v2 adds a *late-window* hardware feature: fits the same device
        // through a second configuration image.
        let v2 = SystemSpec::new(vec![
            sw("ctl", 4, 100),
            hw("filt", 0, 30, 400),
            hw("newfeat", 60, 30, 500),
        ])
        .with_constraints(constraints());
        let up = upgrade_in_field(&deployed.architecture, &v2, &lib, &CosynOptions::default())
            .expect("the upgrade ships as firmware");
        assert_eq!(up.synthesis.report.pe_count, deployed.report.pe_count);
        assert!(up.extra_modes >= 1, "a new image was opened");
        assert!(up.synthesis.report.multi_mode_devices >= 1);
    }

    #[test]
    fn oversized_feature_requires_new_hardware() {
        let lib = library();
        let v1 = SystemSpec::new(vec![hw("filt", 0, 30, 400)]).with_constraints(constraints());
        let deployed = CoSynthesis::new(&v1, &lib).run().unwrap();
        // The new feature overlaps the old one in time AND does not fit
        // beside it spatially: no firmware upgrade can host it.
        let v2 = SystemSpec::new(vec![hw("filt", 0, 30, 400), hw("big", 10, 30, 500)])
            .with_constraints(constraints());
        let err = upgrade_in_field(&deployed.architecture, &v2, &lib, &CosynOptions::default())
            .unwrap_err();
        assert!(matches!(err, SynthesisError::Unallocatable { .. }));
    }

    #[test]
    fn software_rebalancing_reuses_cpus() {
        let lib = library();
        let v1 =
            SystemSpec::new(vec![sw("a", 6, 200), sw("b", 6, 200)]).with_constraints(constraints());
        let deployed = CoSynthesis::new(&v1, &lib).run().unwrap();
        // v2 shuffles the software (different shapes, same rough load).
        let v2 = SystemSpec::new(vec![sw("a2", 5, 240), sw("b2", 7, 160)])
            .with_constraints(constraints());
        let up = upgrade_in_field(&deployed.architecture, &v2, &lib, &CosynOptions::default())
            .expect("software-only upgrade");
        assert_eq!(up.synthesis.report.pe_count, deployed.report.pe_count);
        assert_eq!(up.extra_modes, 0);
    }
}
