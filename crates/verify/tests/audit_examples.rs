//! The acceptance gate of the auditor: freshly synthesised paper
//! benchmarks must audit clean — with reconfiguration off and on, and
//! through the fault-tolerant flow — and seeded fault injection must
//! never produce an unacceptable outcome.
//!
//! The default test run covers the two smallest Table-2 systems; the
//! `#[ignore]`d sweep extends the same checks to all eight (the campaign
//! binary in `crusade-bench` runs them routinely in release mode).

// Test code: helpers unwrap and cast freely on controlled inputs.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use crusade_core::{CoSynthesis, CosynOptions};
use crusade_ft::CrusadeFt;
use crusade_verify::{audit, audit_ft, inject};
use crusade_workloads::{
    paper_examples, paper_ft_annotations, paper_ft_config, paper_library, PaperExample,
    PaperLibrary,
};

fn audit_example(lib: &PaperLibrary, ex: &PaperExample) {
    let spec = ex.build(lib);
    for options in [
        CosynOptions::without_reconfiguration(),
        CosynOptions::default(),
    ] {
        let result = CoSynthesis::new(&spec, &lib.lib)
            .with_options(options.clone())
            .run()
            .unwrap_or_else(|e| panic!("{}: synthesis failed: {e}", ex.name));
        let violations = audit(&spec, &lib.lib, &options, &result);
        assert!(
            violations.is_empty(),
            "{} (reconfiguration: {}): {} violation(s):\n{}",
            ex.name,
            options.reconfiguration,
            violations.len(),
            violations
                .iter()
                .map(|v| format!("  [{}] {v}", v.kind()))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

fn audit_ft_example(lib: &PaperLibrary, ex: &PaperExample) {
    let spec = ex.build(lib);
    let annotations = paper_ft_annotations(&spec, lib, ex.seed);
    let config = paper_ft_config(&spec, lib);
    let options = CosynOptions::default();
    let result = CrusadeFt::new(&spec, &lib.lib)
        .with_options(options.clone())
        .with_config(config.clone())
        .with_annotations(annotations)
        .run()
        .unwrap_or_else(|e| panic!("{}: FT synthesis failed: {e}", ex.name));
    let violations = audit_ft(&lib.lib, &options, &config, &result);
    assert!(
        violations.is_empty(),
        "{} (fault-tolerant): {} violation(s):\n{}",
        ex.name,
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  [{}] {v}", v.kind()))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn smallest_examples_audit_clean_both_modes() {
    let lib = paper_library();
    for ex in &paper_examples()[..2] {
        audit_example(&lib, ex);
    }
}

#[test]
fn smallest_example_audits_clean_through_ft_flow() {
    let lib = paper_library();
    audit_ft_example(&lib, &paper_examples()[0]);
}

#[test]
fn audit_runs_as_synthesis_post_pass() {
    crusade_verify::install_auditor();
    let lib = paper_library();
    let spec = paper_examples()[0].build(&lib);
    CoSynthesis::new(&spec, &lib.lib)
        .with_options(CosynOptions::default().with_audit())
        .run()
        .expect("audited synthesis should pass its own post-pass");
}

#[test]
fn one_scenario_of_every_fault_kind_is_acceptable() {
    let lib = paper_library();
    let ex = &paper_examples()[0];
    let spec = ex.build(&lib);
    let options = CosynOptions::default();
    let deployed = CoSynthesis::new(&spec, &lib.lib)
        .with_options(options.clone())
        .run()
        .expect("synthesis");
    // Seeds 0..5 hit each fault kind exactly once (kind = seed % 5).
    for seed in 0..5u64 {
        let report = inject(&spec, &lib.lib, &options, &deployed, seed);
        assert!(
            report.outcome.acceptable(),
            "seed {seed} ({}): unacceptable outcome {:?}",
            report.scenario,
            report.outcome
        );
    }
}

/// The full Table-2 sweep (minutes of CPU in debug mode); the campaign
/// binary covers the same ground in release.
#[test]
#[ignore = "full eight-example sweep; run explicitly or via the campaign binary"]
fn all_examples_audit_clean_both_modes() {
    let lib = paper_library();
    for ex in &paper_examples() {
        audit_example(&lib, ex);
    }
}

/// The full Table-3 fault-tolerant sweep.
#[test]
#[ignore = "full eight-example FT sweep; run explicitly or via the campaign binary"]
fn all_examples_audit_clean_through_ft_flow() {
    let lib = paper_library();
    for ex in &paper_examples() {
        audit_ft_example(&lib, ex);
    }
}
